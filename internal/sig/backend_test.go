package sig

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	good := []string{
		"signature",
		"signature:slots=1m",
		"hybrid:slots=1m,exact=4096,promote=8",
		"a.b-c_d:x=1,y=2k",
	}
	for _, s := range good {
		sp, err := ParseSpec(s)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", s, err)
			continue
		}
		if sp.String() != s {
			t.Errorf("ParseSpec(%q).String() = %q", s, sp.String())
		}
	}
	bad := []string{
		"", ":", "name:", "name:slots", "name:slots=", "name:=1",
		"name:a=1,a=2", "na me", "name:k v=1", "name:k=v,,k2=v",
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

func TestSpecInt(t *testing.T) {
	sp, err := ParseSpec("x:a=64k,b=2m,c=1g,d=123")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		key  string
		want int
	}{{"a", 64 << 10}, {"b", 2 << 20}, {"c", 1 << 30}, {"d", 123}, {"missing", 77}} {
		got, err := sp.Int(tc.key, 77)
		if err != nil || got != tc.want {
			t.Errorf("Int(%q) = %d, %v; want %d", tc.key, got, err, tc.want)
		}
	}
}

func TestOpenStore(t *testing.T) {
	// Empty spec falls back to the default signature backend.
	st, err := OpenStore("", 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*Signature); !ok {
		t.Errorf("default backend = %T, want *Signature", st)
	}
	if _, err := OpenStore("no-such-backend", 0); err == nil ||
		!strings.Contains(err.Error(), "no-such-backend") {
		t.Errorf("unknown backend error = %v", err)
	}
	if _, err := OpenStore("perfect:slots=4", 0); err == nil {
		t.Error("perfect accepted a parameter it does not understand")
	}
	if _, err := OpenStore("signature:bogus=1", 0); err == nil {
		t.Error("signature accepted an unknown parameter")
	}
}

func TestEstimateStoreBytes(t *testing.T) {
	b, bounded, err := EstimateStoreBytes("signature:slots=1024", 0)
	if err != nil || !bounded {
		t.Fatalf("signature estimate: %d, %v, %v", b, bounded, err)
	}
	if want := uint64(2 * 1024 * slotBytes); b != want {
		t.Errorf("signature bytes = %d, want %d", b, want)
	}
	if _, bounded, err := EstimateStoreBytes("perfect", 0); err != nil || bounded {
		t.Errorf("perfect must be unbounded, got bounded=%v err=%v", bounded, err)
	}
}

// FuzzBackendSpec: ParseSpec must never panic, and any spec it accepts must
// survive a String round trip — re-parsing the canonical form succeeds and
// renders identically.
func FuzzBackendSpec(f *testing.F) {
	for _, s := range []string{
		"", "signature", "signature:slots=1m", "perfect",
		"hybrid:slots=1m,exact=4096", "a:b=c", "a:b=c,d=e",
		":", "x:", "x:=", "x:y=", "x:y=z,y=w", "x y", "x:k=1k,j=2g",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpec(s)
		if err != nil {
			return
		}
		out := sp.String()
		sp2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", out, s, err)
		}
		if sp2.String() != out {
			t.Fatalf("round trip unstable: %q -> %q -> %q", s, out, sp2.String())
		}
	})
}
