package loc

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPackRoundTrip(t *testing.T) {
	cases := []struct {
		file FileID
		line int
	}{
		{1, 60}, {1, 74}, {4, 58}, {0, 0}, {255, 0xFFFFFF},
	}
	for _, c := range cases {
		s := Pack(c.file, c.line)
		if s.File() != c.file {
			t.Errorf("Pack(%d,%d).File() = %d", c.file, c.line, s.File())
		}
		if s.Line() != c.line {
			t.Errorf("Pack(%d,%d).Line() = %d", c.file, c.line, s.Line())
		}
	}
}

func TestPackSaturates(t *testing.T) {
	s := Pack(10, 1<<30)
	if s.Line() != 0xFFFFFF {
		t.Errorf("line not saturated: %d", s.Line())
	}
	if s.File() != 10 {
		t.Errorf("file corrupted by line overflow: %d", s.File())
	}
	if got := Pack(3, -5).Line(); got != 0 {
		t.Errorf("negative line should clamp to 0, got %d", got)
	}
}

func TestPackProperty(t *testing.T) {
	f := func(file uint8, line uint32) bool {
		l := int(line & 0xFFFFFF)
		s := Pack(FileID(file), l)
		return s.File() == FileID(file) && s.Line() == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormat(t *testing.T) {
	if got := Pack(1, 60).String(); got != "1:60" {
		t.Errorf("String() = %q, want 1:60", got)
	}
	if got := SourceLoc(0).String(); got != "?" {
		t.Errorf("zero String() = %q, want ?", got)
	}
}

func TestTableInterning(t *testing.T) {
	tab := NewTable()
	a := tab.File("main.c")
	b := tab.File("util.c")
	if a == b {
		t.Fatal("distinct files got same ID")
	}
	if tab.File("main.c") != a {
		t.Error("re-interning changed the ID")
	}
	if tab.FileName(a) != "main.c" {
		t.Errorf("FileName = %q", tab.FileName(a))
	}
	if tab.FileName(200) != "?" {
		t.Error("unknown file should map to ?")
	}

	v := tab.Var("temp1")
	if tab.Var("temp1") != v {
		t.Error("re-interning var changed the ID")
	}
	if tab.VarName(v) != "temp1" {
		t.Errorf("VarName = %q", tab.VarName(v))
	}
	if tab.Var("") != 0 || tab.Var("*") != 0 {
		t.Error("empty/star names must be VarID(0)")
	}
	if tab.VarName(0) != "*" {
		t.Error("VarID(0) must print as *")
	}
	if tab.VarName(9999) != "*" {
		t.Error("unknown var should map to *")
	}
}

func TestTableCounts(t *testing.T) {
	tab := NewTable()
	if tab.NumFiles() != 1 || tab.NumVars() != 1 {
		t.Fatalf("fresh table counts: files=%d vars=%d", tab.NumFiles(), tab.NumVars())
	}
	tab.File("a")
	tab.Var("x")
	tab.Var("y")
	if tab.NumFiles() != 2 || tab.NumVars() != 3 {
		t.Fatalf("counts after interning: files=%d vars=%d", tab.NumFiles(), tab.NumVars())
	}
}

func TestTableConcurrent(t *testing.T) {
	tab := NewTable()
	var wg sync.WaitGroup
	const workers = 8
	ids := make([][]VarID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]VarID, 100)
			for i := 0; i < 100; i++ {
				ids[w][i] = tab.Var(fmt.Sprintf("v%d", i))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range ids[0] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got different ID for v%d", w, i)
			}
		}
	}
	if tab.NumVars() != 101 {
		t.Errorf("expected 101 vars, got %d", tab.NumVars())
	}
}
