// Package loc provides interned source locations and variable names.
//
// The profiler records, for every memory access, the source code location
// (file:line, printed as "1:60" in the paper's output format) and the name of
// the variable involved. Storing strings per access would dominate both time
// and space, so files and variable names are interned once into small integer
// IDs, and a full location is packed into a single 32-bit word.
package loc

import (
	"fmt"
	"sync"
)

// SourceLoc is a packed source location: the upper 8 bits hold the file ID,
// the lower 24 bits the line number. The zero value means "unknown location"
// and prints as "?".
type SourceLoc uint32

// Pack builds a SourceLoc from a file ID and a line number. File IDs above
// 255 and lines above 2^24-1 are saturated; real inputs never get close.
func Pack(file FileID, line int) SourceLoc {
	if file > 255 {
		file = 255
	}
	if line < 0 {
		line = 0
	}
	if line > 0xFFFFFF {
		line = 0xFFFFFF
	}
	return SourceLoc(uint32(file)<<24 | uint32(line))
}

// File returns the file ID component.
func (s SourceLoc) File() FileID { return FileID(s >> 24) }

// Line returns the line number component.
func (s SourceLoc) Line() int { return int(s & 0xFFFFFF) }

// IsZero reports whether the location is the unknown location.
func (s SourceLoc) IsZero() bool { return s == 0 }

// String renders the location the way the paper prints it: "file:line",
// e.g. "1:60".
func (s SourceLoc) String() string {
	if s.IsZero() {
		return "?"
	}
	return fmt.Sprintf("%d:%d", s.File(), s.Line())
}

// FileID identifies an interned file name.
type FileID uint8

// VarID identifies an interned variable name. The zero VarID prints as "*",
// which the paper uses for anonymous or compiler-temporary storage.
type VarID uint32

// Table interns file names and variable names. It is safe for concurrent use.
// The zero value is ready to use.
type Table struct {
	mu      sync.RWMutex
	files   []string
	fileIDs map[string]FileID
	vars    []string
	varIDs  map[string]VarID
}

// NewTable returns an empty intern table. File IDs start at 1 so that file 0
// can mean "unknown"; variable IDs start at 1 so that VarID(0) means "*".
func NewTable() *Table {
	return &Table{
		files:   []string{"?"},
		fileIDs: make(map[string]FileID),
		vars:    []string{"*"},
		varIDs:  make(map[string]VarID),
	}
}

// File interns a file name and returns its ID. Interning the same name twice
// returns the same ID.
func (t *Table) File(name string) FileID {
	t.mu.RLock()
	id, ok := t.fileIDs[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.fileIDs[name]; ok {
		return id
	}
	id = FileID(len(t.files))
	t.files = append(t.files, name)
	t.fileIDs[name] = id
	return id
}

// Var interns a variable name and returns its ID.
func (t *Table) Var(name string) VarID {
	if name == "" || name == "*" {
		return 0
	}
	t.mu.RLock()
	id, ok := t.varIDs[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.varIDs[name]; ok {
		return id
	}
	id = VarID(len(t.vars))
	t.vars = append(t.vars, name)
	t.varIDs[name] = id
	return id
}

// FileName returns the name for a file ID, or "?" if unknown.
func (t *Table) FileName(id FileID) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) < len(t.files) {
		return t.files[id]
	}
	return "?"
}

// VarName returns the name for a variable ID, or "*" if unknown.
func (t *Table) VarName(id VarID) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) < len(t.vars) {
		return t.vars[id]
	}
	return "*"
}

// NumVars returns the number of interned variables including the implicit "*".
func (t *Table) NumVars() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.vars)
}

// NumFiles returns the number of interned files including the implicit "?".
func (t *Table) NumFiles() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.files)
}
