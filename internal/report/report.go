// Package report renders experiment results as aligned ASCII tables.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple titled table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are printed after the table body.
	Notes []string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat prints a float compactly: two decimals, trimming ".00".
func FormatFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimSuffix(s, "0")
	s = strings.TrimSuffix(s, "0")
	s = strings.TrimSuffix(s, ".")
	return s
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// SI formats a count in engineering notation like the paper's tables
// (1.9E+9).
func SI(v float64) string {
	return strings.ToUpper(fmt.Sprintf("%.1e", v))
}

// MB formats bytes as megabytes.
func MB(b uint64) string {
	return fmt.Sprintf("%.0f", float64(b)/(1<<20))
}
