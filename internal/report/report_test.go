package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "Demo",
		Headers: []string{"Program", "Slowdown", "MB"},
		Notes:   []string{"small scale"},
	}
	tab.AddRow("c-ray", 86.5, 1020)
	tab.AddRow("kmeans", 4.0, 12)
	out := tab.String()
	for _, want := range []string{"Demo", "Program", "c-ray", "86.5", "kmeans", "note: small scale"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: header and first row start of column 2 match.
	lines := strings.Split(out, "\n")
	h := strings.Index(lines[1], "Slowdown")
	r := strings.Index(lines[3], "86.5")
	if h != r {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", h, r, out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		86.5:  "86.5",
		4.0:   "4",
		0.25:  "0.25",
		100.0: "100",
		0.1:   "0.1",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestSI(t *testing.T) {
	if got := SI(1.9e9); got != "1.9E+09" {
		t.Errorf("SI = %q", got)
	}
	if got := SI(420); got != "4.2E+02" {
		t.Errorf("SI = %q", got)
	}
}

func TestMB(t *testing.T) {
	if got := MB(382 << 20); got != "382" {
		t.Errorf("MB = %q", got)
	}
}
