package trace

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"ddprof/internal/event"
	"ddprof/internal/loc"
)

// recordAll decodes data record-by-record with NextRecord — the reference
// decoder every NextBatch result must match.
func recordAll(data []byte) ([]Record, uint64, error) {
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, 0, err
	}
	var recs []Record
	for {
		rec, err := tr.NextRecord()
		if err != nil {
			return recs, tr.Count(), err
		}
		recs = append(recs, rec)
	}
}

// batchAll decodes data with NextBatch through the given scanner shape and
// flattens the chunks back to records: RangeRef slots pull their range from
// the side table, and collapsed reads (Rep > 0) expand to 1+Rep identical
// records, so the result is comparable record-for-record with recordAll.
func batchAll(tr *Reader, err error) ([]Record, uint64, error) {
	if err != nil {
		return nil, 0, err
	}
	var recs []Record
	for {
		c := event.NewChunk()
		_, err := tr.NextBatch(c)
		for _, a := range c.Events {
			if a.Kind == event.RangeRef {
				recs = append(recs, Record{Range: c.Ranges[a.Addr], IsRange: true})
				continue
			}
			rep := a.Rep
			a.Rep = 0
			for j := uint16(0); ; j++ {
				recs = append(recs, Record{Access: a})
				if j == rep {
					break
				}
			}
		}
		if err != nil {
			return recs, tr.Count(), err
		}
	}
}

// checkBatchMatchesRecord decodes data both ways across three scanner shapes
// (full window, 16-byte windows that split records, and no window at all) and
// requires identical records, counts, and end-of-stream errors.
func checkBatchMatchesRecord(t *testing.T, data []byte) {
	t.Helper()
	want, wantN, wantErr := recordAll(data)
	scanners := map[string]func() (*Reader, error){
		// bytes.Reader implements ByteScanner itself, so NewReader adds no
		// bufio window: that shape exercises the pure byte-at-a-time path.
		"window":      func() (*Reader, error) { return NewReader(bufio.NewReader(bytes.NewReader(data))) },
		"tiny-window": func() (*Reader, error) { return NewReader(bufio.NewReaderSize(bytes.NewReader(data), 16)) },
		"no-window":   func() (*Reader, error) { return NewReader(bytes.NewReader(data)) },
	}
	for name, mk := range scanners {
		got, gotN, gotErr := batchAll(mk())
		if !sameEnd(wantErr, gotErr) {
			t.Fatalf("%s: end-of-stream mismatch: NextRecord %v, NextBatch %v", name, wantErr, gotErr)
		}
		if gotN != wantN {
			t.Fatalf("%s: Count mismatch: NextRecord %d, NextBatch %d", name, wantN, gotN)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: record count mismatch: NextRecord %d, NextBatch %d", name, len(want), len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: record %d mismatch:\nNextRecord %+v\nNextBatch  %+v", name, i, want[i], got[i])
			}
		}
	}
}

// sameEnd reports whether two decode terminations are equivalent: both clean
// (io.EOF) or both the same error text.
func sameEnd(a, b error) bool {
	if errors.Is(a, io.EOF) && !errors.Is(a, io.ErrUnexpectedEOF) {
		return errors.Is(b, io.EOF) && !errors.Is(b, io.ErrUnexpectedEOF)
	}
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Error() == b.Error()
}

// mixedTrace encodes a stream exercising every wire-legal shape: all point
// kinds, flags, duplicate reads, ranges, and epoch marks.
func mixedTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range randomEvents(500, 7) {
		w.Access(a)
		if i%37 == 0 {
			w.Access(a) // duplicate read or write
			w.Access(a)
		}
		switch i % 61 {
		case 13:
			w.Access(event.Access{Kind: event.EpochMark, Addr: uint64(i)})
		case 29:
			w.Access(event.Access{Addr: a.Addr, Kind: event.Remove, TS: a.TS})
		case 47:
			w.Range(event.Range{
				Base: 0x40000, Stride: 8, Count: 64, TS: a.TS + 1,
				Loc: loc.Pack(2, 9), Var: 3, Kind: event.Write, Thread: a.Thread,
			})
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestNextBatchMatchesNextRecord(t *testing.T) {
	checkBatchMatchesRecord(t, mixedTrace(t))
}

func TestNextBatchTruncated(t *testing.T) {
	data := mixedTrace(t)
	// Cut the stream at a spread of offsets, including mid-record and
	// mid-varint positions: the batch decoder must report the identical
	// truncation error at the identical record index.
	for cut := 4; cut < len(data); cut += 97 {
		checkBatchMatchesRecord(t, data[:cut])
	}
	// And every offset near the tail, where the last record is clipped.
	for cut := len(data) - 20; cut < len(data); cut++ {
		checkBatchMatchesRecord(t, data[:cut])
	}
}

func TestNextBatchCorrupt(t *testing.T) {
	data := mixedTrace(t)
	for _, tc := range []struct {
		name   string
		mutate func([]byte)
	}{
		{"bad-kind", func(b []byte) { b[len(b)/2] = 0xee }},
		{"bad-flags", func(b []byte) { b[len(b)/3] = 0x80 }},
		{"overflow-varint", func(b []byte) {
			copy(b[len(b)/2:], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mut := append([]byte(nil), data...)
			tc.mutate(mut)
			checkBatchMatchesRecord(t, mut)
		})
	}
}

func TestNextBatchFrameTooLarge(t *testing.T) {
	var framed bytes.Buffer
	fw := NewFrameWriter(&framed)
	w, err := NewWriter(fw)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range randomEvents(2000, 11) {
		w.Access(a)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	// The writer flushes multi-KB frames; a 256-byte ceiling must reject the
	// first oversized one identically on both decode paths.
	tr, err := NewReader(NewFrameReader(bytes.NewReader(framed.Bytes()), 256))
	refTr, err2 := NewReader(NewFrameReader(bytes.NewReader(framed.Bytes()), 256))
	if err != nil || err2 != nil {
		// The magic itself may sit in an oversized frame; both constructions
		// must then fail the same way.
		if !sameEnd(err, err2) || !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("construction errors diverge: %v vs %v", err, err2)
		}
		return
	}
	var refRecErr error
	for refRecErr == nil {
		_, refRecErr = refTr.NextRecord()
	}
	var batchErr error
	for batchErr == nil {
		_, batchErr = tr.NextBatch(event.NewChunk())
	}
	if !errors.Is(batchErr, ErrFrameTooLarge) {
		t.Fatalf("NextBatch error %v, want ErrFrameTooLarge", batchErr)
	}
	if !sameEnd(refRecErr, batchErr) {
		t.Fatalf("oversized-frame error diverges: NextRecord %v, NextBatch %v", refRecErr, batchErr)
	}
}

func TestNextBatchEpochMarkMidFrame(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs := randomEvents(40, 3)
	for i, a := range evs {
		w.Access(a)
		if i == 17 {
			w.Access(event.Access{Kind: event.EpochMark, Addr: 5})
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	checkBatchMatchesRecord(t, buf.Bytes())

	tr, err := NewReader(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	c := event.NewChunk()
	if _, err := tr.NextBatch(c); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !tr.BatchControl() {
		t.Fatal("BatchControl false for a batch containing an EpochMark")
	}
	// The mark must sit in stream order between its neighbours.
	marks := 0
	for i, a := range c.Events {
		if a.Kind == event.EpochMark {
			marks++
			if a.Addr != 5 {
				t.Fatalf("EpochMark payload %d, want 5", a.Addr)
			}
			before := 0
			for _, b := range c.Events[:i] {
				if b.Kind != event.RangeRef {
					before += 1 + int(b.Rep)
				}
			}
			if before != 18 {
				t.Fatalf("EpochMark after %d point events, want 18", before)
			}
		}
	}
	if marks != 1 {
		t.Fatalf("batch holds %d EpochMarks, want 1", marks)
	}
}

func TestBatchControlDataOnly(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range randomEvents(100, 5) {
		w.Access(a)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := tr.NextBatch(event.NewChunk()); err != nil {
			break
		}
		if tr.BatchControl() {
			t.Fatal("BatchControl true for a pure read/write batch")
		}
	}
}

func TestNextBatchChunkCapacity(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct events only, so no collapse: the first batch must fill the
	// chunk exactly and the remainder must arrive in the next call.
	n := event.ChunkSize + 100
	for i := 0; i < n; i++ {
		w.Access(event.Access{
			Addr: uint64(0x1000 + 8*i), TS: uint64(i + 1),
			Kind: event.Kind(i % 2), Loc: loc.Pack(1, 1),
		})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	c := event.NewChunk()
	got, err := tr.NextBatch(c)
	if err != nil {
		t.Fatal(err)
	}
	if got != event.ChunkSize || c.Len() != event.ChunkSize {
		t.Fatalf("first batch appended %d (len %d), want %d", got, c.Len(), event.ChunkSize)
	}
	c.Reset()
	got, err = tr.NextBatch(c)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("second batch appended %d, want 100", got)
	}
	checkBatchMatchesRecord(t, buf.Bytes())
}

func TestNextBatchRangeCapacity(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := event.MaxRangesPerChunk + 10
	for i := 0; i < n; i++ {
		w.Range(event.Range{
			Base: uint64(0x10000 + 0x1000*i), Stride: 8, Count: 16,
			TS: uint64(i + 1), Loc: loc.Pack(3, 4), Kind: event.Read,
		})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	c := event.NewChunk()
	got, err := tr.NextBatch(c)
	if err != nil {
		t.Fatal(err)
	}
	if got != event.MaxRangesPerChunk || len(c.Ranges) != event.MaxRangesPerChunk {
		t.Fatalf("first batch: %d slots, %d ranges, want %d", got, len(c.Ranges), event.MaxRangesPerChunk)
	}
	c.Reset()
	if got, _ = tr.NextBatch(c); got != 10 {
		t.Fatalf("second batch appended %d, want 10", got)
	}
	checkBatchMatchesRecord(t, buf.Bytes())
}

func TestNextBatchDupCollapse(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := event.Access{Addr: 0x2000, TS: 7, Kind: event.Read, Loc: loc.Pack(1, 2), Var: 3}
	const reps = 50
	for i := 0; i < reps; i++ {
		w.Access(a)
	}
	b := a
	b.Addr = 0x2008
	w.Access(b)
	for i := 0; i < reps; i++ {
		w.Access(a)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	c := event.NewChunk()
	if _, err := tr.NextBatch(c); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("collapsed batch holds %d slots, want 3", c.Len())
	}
	total := 0
	for _, ev := range c.Events {
		total += 1 + int(ev.Rep)
	}
	if total != 2*reps+1 {
		t.Fatalf("slot multiplicities sum to %d, want %d", total, 2*reps+1)
	}
	if tr.Count() != uint64(2*reps+1) {
		t.Fatalf("Count %d, want %d", tr.Count(), 2*reps+1)
	}
	checkBatchMatchesRecord(t, buf.Bytes())
}

// FuzzNextBatch is the differential fuzzer: for arbitrary bytes, the batched
// decoder — across every scanner shape — must yield exactly the records and
// the end-of-stream error of the byte-at-a-time reference decoder, and never
// panic.
func FuzzNextBatch(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Access(event.Access{Addr: 0x1000, Kind: event.Write, Loc: loc.Pack(1, 7), TS: 1})
	w.Access(event.Access{Addr: 0x1008, Kind: event.Read, Loc: loc.Pack(1, 8), TS: 2, Thread: 3})
	w.Access(event.Access{Addr: 0x1008, Kind: event.Read, Loc: loc.Pack(1, 8), TS: 2, Thread: 3})
	w.Access(event.Access{Kind: event.EpochMark, Addr: 1})
	w.Range(event.Range{Base: 0x4000, Stride: 16, Count: 32, TS: 3, Loc: loc.Pack(2, 1), Kind: event.Write})
	w.Access(event.Access{Addr: 0x1010, Kind: event.Remove, TS: 4})
	_ = w.Close()
	f.Add(buf.Bytes(), uint8(0))
	f.Add(buf.Bytes()[:len(buf.Bytes())-3], uint8(1))
	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt, uint8(2))
	f.Add([]byte("DDT1"), uint8(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, shape uint8) {
		want, wantN, wantErr := recordAll(data)
		var tr *Reader
		var err error
		switch shape % 3 {
		case 0:
			tr, err = NewReader(bufio.NewReader(bytes.NewReader(data)))
		case 1:
			tr, err = NewReader(bufio.NewReaderSize(bytes.NewReader(data), 16))
		default:
			// bytes.Reader is a ByteScanner without a window: pure slow path.
			tr, err = NewReader(bytes.NewReader(data))
		}
		got, gotN, gotErr := batchAll(tr, err)
		if !sameEnd(wantErr, gotErr) {
			t.Fatalf("end-of-stream mismatch: NextRecord %v, NextBatch %v", wantErr, gotErr)
		}
		if gotN != wantN {
			t.Fatalf("Count mismatch: NextRecord %d, NextBatch %d", wantN, gotN)
		}
		if len(got) != len(want) {
			t.Fatalf("record count mismatch: NextRecord %d, NextBatch %d", len(want), len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d mismatch:\nNextRecord %+v\nNextBatch  %+v", i, want[i], got[i])
			}
		}
	})
}
