package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Epoch-delta framing: the live-observatory counterpart of the trace frames
// above. A watch subscription carries a sequence of delta frames, each one a
// complete DDP1 profile holding the dependences whose aggregates advanced
// during one epoch. The frame layer is deliberately ignorant of the payload —
// it moves opaque profile bytes with an epoch stamp and a final marker — so
// the DDP1 codec stays the single owner of the profile wire format and the
// concatenated frames decode-merge (dep.DecodeMerge) to the exact final
// profile.
//
// Wire layout per frame: uvarint body length, then body =
// [flags byte][uvarint epoch][payload bytes]. A zero-length body is the
// end-of-stream terminator, exactly like the trace framing, and the reader is
// hardened the same way: truncation surfaces as io.ErrUnexpectedEOF, unknown
// flag bits and oversized frames are rejected before allocation.

// DeltaFrame is one epoch's worth of new dependence aggregate.
type DeltaFrame struct {
	// Epoch is the epoch this delta closes: the profile covers instances
	// observed since the previous frame's epoch.
	Epoch uint32
	// Final marks the last frame of a session: the payload is the unshipped
	// remainder extracted from the merged final profile, so after folding it
	// the subscriber holds the session's exact end-of-run profile.
	Final bool
	// Payload is a complete DDP1 profile (possibly empty for a final frame
	// that has nothing left to ship).
	Payload []byte
}

const (
	deltaFlagFinal = 1 << 0
	deltaFlagsKnow = deltaFlagFinal
)

// DeltaWriter emits delta frames. Close writes the terminator; it does not
// close the underlying writer.
type DeltaWriter struct {
	w      io.Writer
	closed bool
}

// NewDeltaWriter returns a DeltaWriter emitting frames to w.
func NewDeltaWriter(w io.Writer) *DeltaWriter { return &DeltaWriter{w: w} }

// WriteFrame emits one frame.
func (dw *DeltaWriter) WriteFrame(f DeltaFrame) error {
	if dw.closed {
		return fmt.Errorf("trace: write on closed DeltaWriter")
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	var fl byte
	if f.Final {
		fl = deltaFlagFinal
	}
	body := 1 + binary.PutUvarint(hdr[1:], uint64(f.Epoch))
	hdr[0] = fl
	var pre [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pre[:], uint64(body+len(f.Payload)))
	if _, err := dw.w.Write(pre[:n]); err != nil {
		return err
	}
	if _, err := dw.w.Write(hdr[:body]); err != nil {
		return err
	}
	if len(f.Payload) == 0 {
		return nil
	}
	_, err := dw.w.Write(f.Payload)
	return err
}

// Close writes the end-of-stream terminator.
func (dw *DeltaWriter) Close() error {
	if dw.closed {
		return nil
	}
	dw.closed = true
	_, err := dw.w.Write([]byte{0})
	return err
}

// DeltaReader decodes a delta frame stream. Next returns io.EOF after the
// terminator; a transport EOF before it surfaces as an error wrapping
// io.ErrUnexpectedEOF.
type DeltaReader struct {
	br   *bufio.Reader
	max  int
	done bool
	err  error
}

// NewDeltaReader reads delta frames from r. maxFrame <= 0 selects
// DefaultMaxFrame.
func NewDeltaReader(r io.Reader, maxFrame int) *DeltaReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &DeltaReader{br: br, max: maxFrame}
}

// Next returns the next frame. The payload is freshly allocated and owned by
// the caller.
func (dr *DeltaReader) Next() (DeltaFrame, error) {
	var f DeltaFrame
	if dr.err != nil {
		return f, dr.err
	}
	if dr.done {
		return f, io.EOF
	}
	ln, err := binary.ReadUvarint(dr.br)
	if err != nil {
		dr.err = fmt.Errorf("trace: reading delta frame header: %w", noEOF(err))
		return f, dr.err
	}
	if ln == 0 {
		dr.done = true
		return f, io.EOF
	}
	if ln > uint64(dr.max) {
		dr.err = fmt.Errorf("trace: delta frame of %d bytes: %w", ln, ErrFrameTooLarge)
		return f, dr.err
	}
	fl, err := dr.br.ReadByte()
	if err != nil {
		dr.err = fmt.Errorf("trace: reading delta frame flags: %w", noEOF(err))
		return f, dr.err
	}
	if fl&^byte(deltaFlagsKnow) != 0 {
		dr.err = fmt.Errorf("trace: delta frame: undefined flag bits %#x", fl)
		return f, dr.err
	}
	rest := countingReader{br: dr.br}
	epoch, err := binary.ReadUvarint(&rest)
	if err != nil {
		dr.err = fmt.Errorf("trace: reading delta frame epoch: %w", noEOF(err))
		return f, dr.err
	}
	if epoch > uint64(^uint32(0)) {
		dr.err = fmt.Errorf("trace: delta frame epoch %d overflows uint32", epoch)
		return f, dr.err
	}
	used := uint64(1) + rest.n
	if used > ln {
		dr.err = fmt.Errorf("trace: delta frame header exceeds body length %d", ln)
		return f, dr.err
	}
	f.Epoch = uint32(epoch)
	f.Final = fl&deltaFlagFinal != 0
	f.Payload = make([]byte, ln-used)
	if _, err := io.ReadFull(dr.br, f.Payload); err != nil {
		dr.err = fmt.Errorf("trace: reading delta frame payload: %w", noEOF(err))
		return f, dr.err
	}
	return f, nil
}

// Terminated reports whether the end-of-stream terminator was seen.
func (dr *DeltaReader) Terminated() bool { return dr.done }

// countingReader counts the bytes a varint decode consumes, so the payload
// length can be derived from the frame's total body length.
type countingReader struct {
	br *bufio.Reader
	n  uint64
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}
