package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestDeltaRoundTrip: frames survive the codec with epoch, final marker and
// payload intact, and the terminator ends the stream with io.EOF.
func TestDeltaRoundTrip(t *testing.T) {
	frames := []DeltaFrame{
		{Epoch: 1, Payload: []byte("DDP1-ish payload")},
		{Epoch: 2, Payload: nil}, // empty payload is legal (quiet final frames)
		{Epoch: 300, Final: true, Payload: bytes.Repeat([]byte{0xab}, 1000)},
	}
	var buf bytes.Buffer
	dw := NewDeltaWriter(&buf)
	for _, f := range frames {
		if err := dw.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := dw.WriteFrame(frames[0]); err == nil {
		t.Fatal("WriteFrame after Close accepted")
	}

	dr := NewDeltaReader(&buf, 0)
	for i, want := range frames {
		got, err := dr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Epoch != want.Epoch || got.Final != want.Final || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := dr.Next(); err != io.EOF {
		t.Fatalf("after terminator: err = %v, want io.EOF", err)
	}
	if !dr.Terminated() {
		t.Fatal("Terminated() false after terminator")
	}
}

// TestDeltaReaderHardening: truncation, undefined flags, oversized frames and
// header/body inconsistencies error out instead of panicking or hanging.
func TestDeltaReaderHardening(t *testing.T) {
	frame := func(f DeltaFrame) []byte {
		var buf bytes.Buffer
		dw := NewDeltaWriter(&buf)
		dw.WriteFrame(f)
		return buf.Bytes()
	}
	full := frame(DeltaFrame{Epoch: 7, Payload: []byte("abcdef")})

	cases := map[string][]byte{
		"empty":           {},
		"cut header":      full[:1],
		"cut payload":     full[:len(full)-2],
		"missing flags":   {1},
		"undefined flags": {3, 0xfe, 0},
		"header > body":   {1, 0, 5}, // body len 1, but flags+epoch need 2
	}
	for name, data := range cases {
		dr := NewDeltaReader(bytes.NewReader(data), 0)
		if _, err := dr.Next(); err == nil || err == io.EOF {
			t.Errorf("%s: err = %v, want decode error", name, err)
		}
	}

	// A clean transport EOF before the terminator is unexpected.
	dr := NewDeltaReader(bytes.NewReader(full), 0)
	if _, err := dr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := dr.Next(); err == nil || !strings.Contains(err.Error(), "unexpected") {
		t.Fatalf("missing terminator: err = %v, want unexpected-EOF error", err)
	}

	// Oversized frames are rejected before allocation.
	big := frame(DeltaFrame{Epoch: 1, Payload: bytes.Repeat([]byte{1}, 100)})
	dr = NewDeltaReader(bytes.NewReader(big), 16)
	if _, err := dr.Next(); err == nil || !strings.Contains(err.Error(), "frame") {
		t.Fatalf("oversized frame: err = %v, want size rejection", err)
	}
}

// FuzzDeltaFrame hardens the delta-frame decoder: arbitrary bytes must decode
// or error, never panic, and whatever decodes must re-encode losslessly.
func FuzzDeltaFrame(f *testing.F) {
	var seed bytes.Buffer
	dw := NewDeltaWriter(&seed)
	dw.WriteFrame(DeltaFrame{Epoch: 3, Payload: []byte("payload")})
	dw.WriteFrame(DeltaFrame{Epoch: 4, Final: true})
	dw.Close()
	f.Add(seed.Bytes())
	f.Add([]byte{0})
	f.Add([]byte{2, 1, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		dr := NewDeltaReader(bytes.NewReader(data), 1<<16)
		var frames []DeltaFrame
		for {
			fr, err := dr.Next()
			if err == io.EOF {
				if !dr.Terminated() {
					t.Fatal("io.EOF without the terminator flag")
				}
				break
			}
			if err != nil {
				return
			}
			frames = append(frames, fr)
		}
		var out bytes.Buffer
		dw := NewDeltaWriter(&out)
		for _, fr := range frames {
			if err := dw.WriteFrame(fr); err != nil {
				t.Fatal(err)
			}
		}
		if err := dw.Close(); err != nil {
			t.Fatal(err)
		}
		back := NewDeltaReader(&out, 1<<16)
		for i, want := range frames {
			got, err := back.Next()
			if err != nil {
				t.Fatalf("re-decode frame %d: %v", i, err)
			}
			if got.Epoch != want.Epoch || got.Final != want.Final || !bytes.Equal(got.Payload, want.Payload) {
				t.Fatalf("frame %d changed across the round trip", i)
			}
		}
		if _, err := back.Next(); err != io.EOF {
			t.Fatalf("round trip grew frames: %v", err)
		}
	})
}
