package trace

import (
	"bytes"
	"io"
	"testing"

	"ddprof/internal/event"
	"ddprof/internal/loc"
)

// FuzzReplay hardens the trace reader: arbitrary bytes must either replay
// or error, never panic, and whatever replays must re-encode.
// FuzzFrames hardens the server framing layer: arbitrary bytes fed to a
// FrameReader (and through it to the trace Reader, like a ddprofd session)
// must error or replay, never panic, and a frame round trip of whatever was
// read back must be lossless.
func FuzzFrames(f *testing.F) {
	var framed bytes.Buffer
	fw := NewFrameWriter(&framed)
	w, _ := NewWriter(fw)
	w.Access(event.Access{Addr: 0x2000, Kind: event.Read, Loc: loc.Pack(2, 3)})
	_ = w.Close()
	_ = fw.Close()
	f.Add(framed.Bytes())
	f.Add([]byte{0})
	f.Add([]byte{4, 'D', 'D', 'T', '1', 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data), 1<<16)
		payload, err := io.ReadAll(fr)
		if err == nil && !fr.Terminated() {
			t.Fatal("clean EOF without terminator frame")
		}
		// Whatever payload was recovered must round-trip through framing.
		var out bytes.Buffer
		fw := NewFrameWriter(&out)
		for i := 0; i < len(payload); i += 100 {
			fw.Write(payload[i:min(i+100, len(payload))])
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		back, err := io.ReadAll(NewFrameReader(&out, 0))
		if err != nil || !bytes.Equal(back, payload) {
			t.Fatalf("frame round trip: err %v, %d bytes vs %d", err, len(back), len(payload))
		}
		// And the session path — trace reader over framed bytes — must never
		// panic.
		_, _ = ReadAll(NewFrameReader(bytes.NewReader(data), 1<<16))
	})
}

func FuzzReplay(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Access(event.Access{Addr: 0x1000, Kind: event.Write, Loc: loc.Pack(1, 7), TS: 1})
	w.Access(event.Access{Addr: 0x1008, Kind: event.Read, Loc: loc.Pack(1, 8), TS: 2, Thread: 3})
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte("DDT1"))
	f.Add([]byte{})
	f.Add([]byte("DDT1\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		w2, err := NewWriter(&out)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range evs {
			w2.Access(a)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadAll(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back) != len(evs) {
			t.Fatalf("round trip lost events: %d vs %d", len(back), len(evs))
		}
	})
}

// FuzzRangeFrame hardens the range-record decode path: arbitrary bytes must
// decode or error, never panic; every decoded range must be in-bounds and
// non-wrapping; the Next()-expansion of a stream must agree with its
// NextRecord() view; and whatever decodes must re-encode losslessly.
func FuzzRangeFrame(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Access(event.Access{Addr: 0x1000, Kind: event.Write, Loc: loc.Pack(1, 7), TS: 1})
	w.Range(event.Range{Base: 0x2000, Stride: 8, Count: 64, Kind: event.Read, Loc: loc.Pack(1, 8), IterDelta: 1, TS: 1})
	w.Range(event.Range{Base: 0x9000, Stride: ^uint64(0) - 15, Count: 32, Kind: event.Write, Loc: loc.Pack(1, 9)})
	w.Access(event.Access{Addr: 0x2008, Kind: event.Read, Loc: loc.Pack(1, 10)})
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte("DDT1"))
	f.Add([]byte{'D', 'D', 'T', '1', 7, 1, 0, 16, 64, 0, 0, 0, 0, 0, 0, 0, 0})
	// Claims count 2^30 — must be rejected before distorting accounting.
	f.Add([]byte{'D', 'D', 'T', '1', 7, 0, 0, 16, 0x80, 0x80, 0x80, 0x80, 0x04, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var recs []Record
		var total uint64
		for {
			rec, err := tr.NextRecord()
			if err == io.EOF {
				break
			}
			if err != nil {
				// The expansion view must fail on the same stream.
				if _, err2 := ReadAll(bytes.NewReader(data)); err2 == nil {
					t.Fatalf("NextRecord failed (%v) but Next replayed cleanly", err)
				}
				return
			}
			if rec.IsRange {
				rg := rec.Range
				if rg.Count < 2 || rg.Count > maxWireRangeCount {
					t.Fatalf("decoded range count %d out of bounds", rg.Count)
				}
				if rangeWraps(rg.Base, int64(rg.Stride), rg.Count) {
					t.Fatalf("decoded range wraps: base %#x stride %d count %d", rg.Base, int64(rg.Stride), rg.Count)
				}
				total += uint64(rg.Count)
			} else {
				total++
			}
			recs = append(recs, rec)
		}
		if tr.Count() != total {
			t.Fatalf("reader count %d, want %d", tr.Count(), total)
		}
		// The per-element view must be exactly the expansion of the records.
		evs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("NextRecord replayed cleanly but Next failed: %v", err)
		}
		var want []event.Access
		for _, rec := range recs {
			if rec.IsRange {
				for j := uint32(0); j < rec.Range.Count; j++ {
					want = append(want, rec.Range.At(j))
				}
			} else {
				want = append(want, rec.Access)
			}
		}
		if len(evs) != len(want) {
			t.Fatalf("Next expanded %d events, NextRecord implies %d", len(evs), len(want))
		}
		for i := range want {
			if evs[i] != want[i] {
				t.Fatalf("event %d: Next %+v vs NextRecord expansion %+v", i, evs[i], want[i])
			}
		}
		// Re-encode the records and require a lossless second decode.
		var out bytes.Buffer
		w2, err := NewWriter(&out)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if rec.IsRange {
				w2.Range(rec.Range)
			} else {
				w2.Access(rec.Access)
			}
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadAll(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back) != len(want) {
			t.Fatalf("round trip lost events: %d vs %d", len(back), len(want))
		}
	})
}
