package trace

import (
	"bytes"
	"testing"

	"ddprof/internal/event"
	"ddprof/internal/loc"
)

// FuzzReplay hardens the trace reader: arbitrary bytes must either replay
// or error, never panic, and whatever replays must re-encode.
func FuzzReplay(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Access(event.Access{Addr: 0x1000, Kind: event.Write, Loc: loc.Pack(1, 7), TS: 1})
	w.Access(event.Access{Addr: 0x1008, Kind: event.Read, Loc: loc.Pack(1, 8), TS: 2, Thread: 3})
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte("DDT1"))
	f.Add([]byte{})
	f.Add([]byte("DDT1\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		w2, err := NewWriter(&out)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range evs {
			w2.Access(a)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadAll(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back) != len(evs) {
			t.Fatalf("round trip lost events: %d vs %d", len(back), len(evs))
		}
	})
}
