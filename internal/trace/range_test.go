package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"ddprof/internal/event"
	"ddprof/internal/loc"
)

func TestRangeRecordRoundTrip(t *testing.T) {
	ranges := []event.Range{
		{Base: 0x1000, Stride: 8, Count: 1000, TS: 7, IterVec: 3, IterDelta: 1,
			Loc: loc.Pack(1, 10), Var: 4, CtxID: 2, Thread: 1, Kind: event.Write, Flags: event.FlagReduction},
		{Base: 0x90000, Stride: ^uint64(0) - 7, Count: 500, Kind: event.Read, Loc: loc.Pack(1, 11)}, // stride -8
		{Base: 0x5000, Stride: 0, Count: 2, Kind: event.Read, Loc: loc.Pack(1, 12)},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Access(event.Access{Addr: 0xff8, Kind: event.Write, Loc: loc.Pack(1, 9), TS: 6})
	for _, r := range ranges {
		w.Range(r)
	}
	w.Access(event.Access{Addr: 0x5008, Kind: event.Read, Loc: loc.Pack(1, 13)})
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	wantCount := uint64(2)
	for _, r := range ranges {
		wantCount += uint64(r.Count)
	}
	if w.Count() != wantCount {
		t.Fatalf("writer count %d, want %d", w.Count(), wantCount)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// NextRecord must hand the ranges back field-for-field.
	tr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got []event.Range
	for {
		rec, err := tr.NextRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.IsRange {
			got = append(got, rec.Range)
		}
	}
	if tr.Count() != wantCount {
		t.Fatalf("reader count %d, want %d", tr.Count(), wantCount)
	}
	if len(got) != len(ranges) {
		t.Fatalf("decoded %d ranges, want %d", len(got), len(ranges))
	}
	for i, r := range ranges {
		if got[i] != r {
			t.Errorf("range %d: got %+v, want %+v", i, got[i], r)
		}
	}

	// Next must expand to exactly the per-element stream.
	evs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(evs)) != wantCount {
		t.Fatalf("expanded %d events, want %d", len(evs), wantCount)
	}
	i := 1
	for _, r := range ranges {
		for j := uint32(0); j < r.Count; j++ {
			if evs[i] != r.At(j) {
				t.Fatalf("element %d: got %+v, want %+v", i, evs[i], r.At(j))
			}
			i++
		}
	}
}

// rawRange hand-encodes a range record so rejection tests can produce frames
// the Writer refuses to emit.
func rawRange(elemKind byte, base, stride int64, count uint64, flags byte) []byte {
	var out []byte
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) { out = append(out, buf[:binary.PutUvarint(buf[:], v)]...) }
	zig := func(v int64) { put(uint64((v << 1) ^ (v >> 63))) }
	out = append(out, byte(event.RangeRef), elemKind)
	zig(base) // delta from prev.Addr == 0 at stream start
	zig(stride)
	put(count)
	zig(0) // TS delta
	for i := 0; i < 6; i++ {
		put(0) // Loc, Var, CtxID, IterVec, IterDelta, Thread
	}
	return append(out, flags)
}

func TestRangeRecordRejection(t *testing.T) {
	cases := []struct {
		name string
		body []byte
		want string
	}{
		{"count-1", rawRange(byte(event.Write), 0x1000, 8, 1, 0), "count 1 out of bounds"},
		{"count-huge", rawRange(byte(event.Write), 0x1000, 8, 1<<30, 0), "out of bounds"},
		{"overflow-up", rawRange(byte(event.Write), -8, 1<<62, 16, 0), "overflows"},
		{"overflow-down", rawRange(byte(event.Write), 0x100, -256, 3, 0), "overflows"},
		{"bad-elem-kind", rawRange(byte(event.Remove), 0x1000, 8, 4, 0), "element kind"},
		{"bad-flags", rawRange(byte(event.Read), 0x1000, 8, 4, 0x80), "flag bits"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := append([]byte(magic), tc.body...)
			tr, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tr.NextRecord(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
	// Every truncation of a valid range record must error (wrapping
	// io.ErrUnexpectedEOF), never panic, never succeed.
	full := rawRange(byte(event.Write), 0x1000, 8, 64, 0)
	for cut := 0; cut < len(full); cut++ {
		data := append([]byte(magic), full[:cut]...)
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.NextRecord(); err == nil {
			t.Fatalf("cut %d: truncated range decoded", cut)
		} else if cut > 0 && !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("cut %d: err = %v, want truncation", cut, err)
		}
	}
}

func TestCompactorExactReplay(t *testing.T) {
	// A stream with long strided runs, an interleaved section that must NOT
	// compress (order preservation), dup reads, a control event, and an
	// MT-style section with distinct timestamps.
	var evs []event.Access
	for i := 0; i < 2000; i++ {
		evs = append(evs, event.Access{Addr: 0x1000 + uint64(i)*8, Kind: event.Write,
			Loc: loc.Pack(1, 10), Var: 1, CtxID: 3, IterVec: uint64(i)})
	}
	for i := 0; i < 500; i++ {
		evs = append(evs,
			event.Access{Addr: 0x20000 + uint64(i)*8, Kind: event.Read, Loc: loc.Pack(1, 20), IterVec: uint64(i)},
			event.Access{Addr: 0x40000 + uint64(i)*8, Kind: event.Write, Loc: loc.Pack(1, 21), IterVec: uint64(i)},
		)
	}
	evs = append(evs, event.Access{Addr: 0x1000, Kind: event.Remove})
	for i := 0; i < 100; i++ {
		evs = append(evs, event.Access{Addr: 0x60000 + uint64(i)*8, Kind: event.Write,
			Loc: loc.Pack(2, 5), TS: uint64(i + 1), Thread: int32(i % 2)})
	}

	var plain, comp bytes.Buffer
	pw, _ := NewWriter(&plain)
	for _, a := range evs {
		pw.Access(a)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	cw, _ := NewWriter(&comp)
	c := NewCompactor(cw)
	for _, a := range evs {
		c.Access(a)
	}
	if c.Count() != uint64(len(evs)) {
		t.Fatalf("compactor count %d, want %d", c.Count(), len(evs))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The interleaved and MT sections stay point-encoded, so the whole-stream
	// ratio is bounded by them; the 2000-event strided prefix alone collapses
	// to a handful of records.
	if comp.Len() >= plain.Len()/2 {
		t.Errorf("compacted trace %d bytes vs plain %d: expected >2x shrink", comp.Len(), plain.Len())
	}
	got, err := ReadAll(bytes.NewReader(comp.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("replayed %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], evs[i])
		}
	}

	// The interleaved section must have stayed point-encoded: count its
	// records. Two alternating instructions can never extend one run.
	tr, err := NewReader(bytes.NewReader(comp.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var nRanges, nPoints int
	for {
		rec, err := tr.NextRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.IsRange {
			nRanges++
		} else {
			nPoints++
		}
	}
	if nRanges == 0 {
		t.Error("no range records: compactor never compressed")
	}
	if nPoints < 1000+1+100 {
		t.Errorf("only %d point records: the interleaved/MT sections must stay points", nPoints)
	}
}
