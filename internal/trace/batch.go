package trace

// Batched decode: NextBatch turns a stretch of DDT1 bytes into one
// event.Chunk — point records as chunk slots, range records in the chunk's
// side table behind RangeRef slots — which is exactly the layout the pipeline
// producers build in memory. A remote session can therefore hand decoded
// batches to a pipeline's bulk-ingest seam with no per-record interface
// dispatch and no intermediate copies.
//
// The decoder has two gears. When the input exposes its buffered bytes as a
// contiguous window (bufio, or the daemon's pooled frame stream), whole
// records are decoded flat out of the window slice with an inlined varint
// fast path. Records that cross a window edge — and any byte sequence that
// fails validation — fall back to the byte-at-a-time NextRecord decoder,
// which already handles blocking, stitching across frames, and error
// reporting; the windowed path commits only fully valid records, so every
// error NextBatch can return is byte-for-byte a NextRecord error.

import (
	"encoding/binary"
	"io"

	"ddprof/internal/event"
	"ddprof/internal/loc"
)

// ByteScanner is the input surface Reader decodes from. *bufio.Reader
// implements it; NewReader wraps any other io.Reader in one.
type ByteScanner interface {
	io.Reader
	io.ByteReader
}

// batchScanner is the optional fast-path surface of NextBatch: inputs that
// can expose already-buffered bytes as one contiguous window, and discard a
// decoded prefix of it, let records be decoded without per-byte dispatch.
// *bufio.Reader satisfies it, as does the daemon's pooled frame stream.
type batchScanner interface {
	Buffered() int
	Peek(n int) ([]byte, error)
	Discard(n int) (int, error)
}

// NextBatch decodes as many whole records as fit into c: point records (and
// the wire-legal EpochMark control record) become chunk slots, range records
// land in the side table behind a RangeRef slot whose Addr is the side-table
// index. It returns the number of slots appended.
//
// A batch ends when the chunk runs out of event or range capacity, at a clean
// end of stream (io.EOF may accompany a nonzero slot count), or — once at
// least one record has been decoded — when the input has no further bytes
// buffered, so batch boundaries track the cadence of arriving frames rather
// than blocking on the network mid-batch. NextBatch must not be mixed with
// Next on the same Reader (a pending range expansion would be dropped);
// mixing with NextRecord is fine.
func (r *Reader) NextBatch(c *event.Chunk) (int, error) {
	appended := 0
	r.batchCtl = false
	bs, windowed := r.br.(batchScanner)
	for {
		if c.Full() || c.RangesFull() {
			return appended, nil
		}
		if windowed {
			k := bs.Buffered()
			if k == 0 && appended > 0 {
				return appended, nil
			}
			if k > 0 {
				win, _ := bs.Peek(k)
				m, used := r.decodeWindow(win, c, appended > 0)
				if used > 0 {
					bs.Discard(used)
				}
				appended += m
				if m > 0 {
					continue
				}
				// The leading record crosses the window edge or fails to
				// validate: resolve it byte-at-a-time below.
			}
		}
		rec, err := r.NextRecord()
		if err != nil {
			return appended, err
		}
		if rec.IsRange {
			idx := c.AppendRange(rec.Range)
			c.Append(event.Access{Addr: uint64(idx), Kind: event.RangeRef})
		} else {
			if rec.Access.Kind > event.Remove {
				r.batchCtl = true
			}
			c.Append(rec.Access)
		}
		appended++
	}
}

// BatchControl reports whether the batch decoded by the most recent NextBatch
// call contained any control record (a kind beyond Remove — in wire traces
// that means EpochMark or a kind the consumer will reject). Callers feeding
// pure data batches to a bulk-ingest seam can skip per-record inspection
// when it reports false.
func (r *Reader) BatchControl() bool { return r.batchCtl }

// decodeWindow decodes whole records from win into c until the window or the
// chunk runs out, or a record cannot be decoded from the bytes in hand. It
// returns the slots appended and the bytes consumed.
//
// Point records — the bulk of every trace — are decoded by the fused loop
// body itself: the chunk cursor and the delta-decode context live in locals,
// each field takes one compare on the single-byte-varint fast path, and the
// record is written straight into its chunk slot. Only range records
// (sliceRange) call out. Like the helpers the loop commits only fully valid
// records, so the byte-at-a-time decoder remains the single source of
// blocking and error text.
//
// contd reports whether the calling NextBatch has already appended to c: the
// duplicate filter may then fold a leading duplicate read into the chunk's
// tail slot. It must be false for slots that predate the call, so a caller
// can never receive Rep bumps inside a chunk NextBatch claims it left alone.
func (r *Reader) decodeWindow(win []byte, c *event.Chunk, contd bool) (slots, used int) {
	evs := c.Events[:cap(c.Events)]
	ne := len(c.Events)
	prevAddr, prevTS := r.prev.Addr, r.prev.TS
	lastPoint := -1 // chunk index of the newest fast-path point record
	lastSlot := -1  // chunk index of the newest slot appended this batch
	if contd {
		lastSlot = ne - 1
	}
	points := uint64(0) // record count to fold into r.n on exit
	for used < len(win) && ne < len(evs) {
		b := win[used:]
		k := event.Kind(b[0])
		if k == event.RangeRef {
			// Ranges decode against Reader state, so sync the local
			// cursor and delta context around the call.
			c.Events = evs[:ne]
			r.prev.Addr, r.prev.TS = prevAddr, prevTS
			r.n += points
			points = 0
			if c.RangesFull() {
				break
			}
			n := r.sliceRange(b, c)
			ne = len(c.Events)
			prevAddr, prevTS = r.prev.Addr, r.prev.TS
			if n == 0 {
				break
			}
			lastSlot = ne - 1
			used += n
			slots++
			continue
		}
		if k > event.Flush && k != event.EpochMark {
			break
		}
		// Field order: zigzag dAddr, zigzag dTS, then uvarint Loc, Var,
		// CtxID, IterVec, Thread, then the flags byte. Continuation bytes
		// decode inline too — multi-byte Loc and address jumps are routine —
		// with binary.Uvarint's exact overflow rules, so the fast path never
		// accepts bytes the slow path would reject.
		var fv [7]uint64
		pos := 1
		for f := 0; f < 7; f++ {
			if pos >= len(b) {
				pos = 0
				break
			}
			v := uint64(b[pos])
			pos++
			if v >= 0x80 {
				v &= 0x7f
				shift := 7
				for {
					if pos >= len(b) || shift > 63 {
						pos = 0
						break
					}
					cb := b[pos]
					pos++
					if cb < 0x80 {
						if shift == 63 && cb > 1 {
							pos = 0 // overflows 64 bits
							break
						}
						v |= uint64(cb) << shift
						break
					}
					v |= uint64(cb&0x7f) << shift
					shift += 7
				}
				if pos == 0 {
					break
				}
			}
			fv[f] = v
		}
		if pos == 0 || pos >= len(b) {
			break
		}
		fb := b[pos]
		pos++
		if event.Flags(fb)&^(event.FlagReduction|event.FlagInduction) != 0 {
			break
		}
		prevAddr = uint64(int64(prevAddr) + (int64(fv[0]>>1) ^ -int64(fv[0]&1)))
		prevTS = uint64(int64(prevTS) + (int64(fv[1]>>1) ^ -int64(fv[1]&1)))
		if k == event.Read && lastSlot >= 0 {
			// Duplicate filter, mirroring the producer's: a read identical
			// to the chunk's previous slot folds into that slot's repetition
			// count instead of occupying a slot and an engine dispatch of
			// its own. The engine replays the multiplicity, so the profile
			// stays byte-identical to the uncollapsed stream; an EpochMark
			// or range slot in between blocks the merge, which keeps epoch
			// attribution and ordering exact.
			if last := &evs[lastSlot]; last.Kind == event.Read && last.Rep != event.MaxRep &&
				last.Addr == prevAddr && last.TS == prevTS &&
				last.Loc == loc.SourceLoc(fv[2]) && last.Var == loc.VarID(fv[3]) &&
				last.CtxID == uint32(fv[4]) && last.IterVec == fv[5] &&
				last.Thread == int32(fv[6]) && last.Flags == event.Flags(fb) {
				last.Rep++
				points++
				used += pos
				continue
			}
		}
		evs[ne] = event.Access{
			Addr:    prevAddr,
			TS:      prevTS,
			Loc:     loc.SourceLoc(fv[2]),
			Var:     loc.VarID(fv[3]),
			CtxID:   uint32(fv[4]),
			IterVec: fv[5],
			Thread:  int32(fv[6]),
			Kind:    k,
			Flags:   event.Flags(fb),
		}
		if k > event.Remove {
			r.batchCtl = true
		}
		lastPoint = ne
		lastSlot = ne
		ne++
		points++
		used += pos
		slots++
	}
	// Commit the local decode context. NextRecord keeps the whole previous
	// point record in r.prev (though only Addr and TS feed the deltas), so
	// restore that exact state: the newest point record wholesale, then the
	// final delta context on top (a trailing range only advances Addr/TS).
	if lastPoint >= 0 {
		r.prev = evs[lastPoint]
	}
	r.prev.Addr, r.prev.TS = prevAddr, prevTS
	r.n += points
	c.Events = evs[:ne]
	return slots, used
}

// sliceUvarint is binary.Uvarint with a fast path for the single-byte
// varints that dominate DDT1 records. n == 0 covers both truncation and
// overflow; the caller defers either to the byte-at-a-time decoder.
func sliceUvarint(b []byte) (uint64, int) {
	if len(b) > 0 && b[0] < 0x80 {
		return uint64(b[0]), 1
	}
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0
	}
	return v, n
}

func sliceZigzag(b []byte) (int64, int) {
	u, n := sliceUvarint(b)
	return int64(u>>1) ^ -int64(u&1), n
}

// sliceRange decodes one range record (RangeRef kind byte included) from the
// head of b, installing it in the chunk's side table behind a RangeRef slot.
// Like slicePoint it commits only fully valid records and returns 0 for
// anything else.
func (r *Reader) sliceRange(b []byte, c *event.Chunk) int {
	if len(b) < 2 {
		return 0
	}
	var rg event.Range
	if k := event.Kind(b[1]); k != event.Read && k != event.Write {
		return 0
	}
	rg.Kind = event.Kind(b[1])
	pos := 2
	dBase, n := sliceZigzag(b[pos:])
	if n == 0 {
		return 0
	}
	pos += n
	stride, n := sliceZigzag(b[pos:])
	if n == 0 {
		return 0
	}
	pos += n
	cnt, n := sliceUvarint(b[pos:])
	if n == 0 {
		return 0
	}
	pos += n
	if cnt < 2 || cnt > maxWireRangeCount {
		return 0
	}
	rg.Base = uint64(int64(r.prev.Addr) + dBase)
	rg.Stride = uint64(stride)
	rg.Count = uint32(cnt)
	if rangeWraps(rg.Base, stride, rg.Count) {
		return 0
	}
	dTS, n := sliceZigzag(b[pos:])
	if n == 0 {
		return 0
	}
	pos += n
	rg.TS = uint64(int64(r.prev.TS) + dTS)
	var vals [6]uint64
	for i := range vals {
		v, vn := sliceUvarint(b[pos:])
		if vn == 0 {
			return 0
		}
		vals[i] = v
		pos += vn
	}
	if pos >= len(b) {
		return 0
	}
	fb := b[pos]
	pos++
	if event.Flags(fb)&^(event.FlagReduction|event.FlagInduction) != 0 {
		return 0
	}
	rg.Loc = loc.SourceLoc(vals[0])
	rg.Var = loc.VarID(vals[1])
	rg.CtxID = uint32(vals[2])
	rg.IterVec = vals[3]
	rg.IterDelta = vals[4]
	rg.Thread = int32(vals[5])
	rg.Flags = event.Flags(fb)
	idx := c.AppendRange(rg)
	c.Append(event.Access{Addr: uint64(idx), Kind: event.RangeRef})
	r.prev.Addr = rg.Last()
	r.prev.TS = rg.TS
	r.n += uint64(rg.Count)
	return pos
}
