package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Length-prefixed framing for trace streams in transit.
//
// The ddprofd wire protocol carries a DDT1 trace as a sequence of frames:
// a uvarint payload length followed by that many bytes, terminated by a
// zero-length frame. Framing gives the server a bounded ingest unit (frames
// larger than a configured cap are rejected before allocation) and gives the
// client an explicit end-of-stream marker that is distinguishable from a
// dropped connection — a plain DDT1 stream ends only by EOF, which over a
// socket is indistinguishable from a crash mid-record.

// DefaultMaxFrame caps the payload size FrameReader accepts unless
// configured otherwise.
const DefaultMaxFrame = 1 << 20

// ErrFrameTooLarge is wrapped by FrameReader errors when a frame exceeds the
// configured cap.
var ErrFrameTooLarge = errors.New("frame exceeds size limit")

// FrameWriter chops a byte stream into length-prefixed frames. Each Write
// becomes exactly one frame; Close emits the zero-length terminator.
type FrameWriter struct {
	w      io.Writer
	closed bool
}

// NewFrameWriter returns a FrameWriter emitting frames to w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// Write implements io.Writer: one call, one frame. Empty writes are
// suppressed (a zero-length frame is the terminator, written by Close).
func (f *FrameWriter) Write(p []byte) (int, error) {
	if f.closed {
		return 0, errors.New("trace: write on closed FrameWriter")
	}
	if len(p) == 0 {
		return 0, nil
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(p)))
	if _, err := f.w.Write(hdr[:n]); err != nil {
		return 0, err
	}
	return f.w.Write(p)
}

// Close writes the end-of-stream frame. It does not close the underlying
// writer.
func (f *FrameWriter) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	_, err := f.w.Write([]byte{0})
	return err
}

// FrameReader reassembles a framed stream: Read returns payload bytes and
// io.EOF after the zero-length terminator frame. A transport EOF before the
// terminator surfaces as an error wrapping io.ErrUnexpectedEOF, so a peer
// that dies mid-stream is never mistaken for a clean end.
type FrameReader struct {
	br        *bufio.Reader
	max       int
	remaining int
	done      bool
	err       error
}

// NewFrameReader reads frames from r. maxFrame <= 0 selects
// DefaultMaxFrame.
func NewFrameReader(r io.Reader, maxFrame int) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &FrameReader{br: br, max: maxFrame}
}

// Read implements io.Reader over the concatenated frame payloads.
func (f *FrameReader) Read(p []byte) (int, error) {
	if f.err != nil {
		return 0, f.err
	}
	if f.done {
		return 0, io.EOF
	}
	for f.remaining == 0 {
		ln, err := binary.ReadUvarint(f.br)
		if err != nil {
			f.err = fmt.Errorf("trace: reading frame header: %w", noEOF(err))
			return 0, f.err
		}
		if ln == 0 {
			f.done = true
			return 0, io.EOF
		}
		if ln > uint64(f.max) {
			f.err = fmt.Errorf("trace: frame of %d bytes: %w", ln, ErrFrameTooLarge)
			return 0, f.err
		}
		f.remaining = int(ln)
	}
	if len(p) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.br.Read(p)
	f.remaining -= n
	if err != nil {
		f.err = fmt.Errorf("trace: reading frame payload: %w", noEOF(err))
		if n > 0 {
			return n, nil
		}
		return 0, f.err
	}
	return n, nil
}

// Terminated reports whether the end-of-stream frame was seen.
func (f *FrameReader) Terminated() bool { return f.done }
