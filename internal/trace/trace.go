// Package trace records and replays instrumentation event streams.
//
// A Writer is itself a profiler hook: installed into the interpreter it
// serializes every memory access to a compact delta/varint encoding, so a
// target can be executed once and profiled many times offline (different
// signature sizes, different worker counts) by replaying the trace — the
// same run-once/analyze-often workflow the capture step of the Table I
// experiment uses in memory, made durable.
//
// Traces store the raw access stream, not program metadata; replaying
// reproduces all dependences exactly, while loop-carried classification
// additionally needs the program's loop table (events carry context IDs and
// iteration vectors, which remain meaningful alongside the original
// program).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ddprof/internal/event"
	"ddprof/internal/loc"
)

const magic = "DDT1"

// Writer streams accesses to an io.Writer. It implements the interpreter's
// Hook interface, so it can be installed directly as the "profiler" of a
// recording run. Writers are not safe for concurrent use; record
// multi-threaded targets through a serializing wrapper or per-thread
// writers.
type Writer struct {
	bw    *bufio.Writer
	prev  event.Access
	count uint64
	err   error
}

// NewWriter starts a trace.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Access implements the hook: serialize one event.
func (w *Writer) Access(a event.Access) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		if w.err != nil {
			return
		}
		n := binary.PutUvarint(buf[:], v)
		_, w.err = w.bw.Write(buf[:n])
	}
	putZig := func(v int64) {
		put(uint64((v << 1) ^ (v >> 63)))
	}
	w.err = w.bw.WriteByte(byte(a.Kind))
	// Addresses and timestamps are hot and local; delta-encode them.
	putZig(int64(a.Addr) - int64(w.prev.Addr))
	putZig(int64(a.TS) - int64(w.prev.TS))
	put(uint64(a.Loc))
	put(uint64(a.Var))
	put(uint64(a.CtxID))
	put(a.IterVec)
	put(uint64(a.Thread))
	if w.err == nil {
		w.err = w.bw.WriteByte(byte(a.Flags))
	}
	w.prev = a
	w.count++
}

// Count returns the number of events recorded so far.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes the trace; the Writer must not be used afterwards.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Err returns the first serialization error, if any.
func (w *Writer) Err() error { return w.err }

// Replay streams a recorded trace into sink, returning the number of events
// delivered.
func Replay(r io.Reader, sink func(event.Access)) (uint64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	m := make([]byte, 4)
	if _, err := io.ReadFull(br, m); err != nil {
		return 0, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m) != magic {
		return 0, fmt.Errorf("trace: bad magic %q", m)
	}
	var prev event.Access
	var n uint64
	for {
		kb, err := br.ReadByte()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		get := func() (uint64, error) { return binary.ReadUvarint(br) }
		getZig := func() (int64, error) {
			u, err := get()
			return int64(u>>1) ^ -int64(u&1), err
		}
		var a event.Access
		a.Kind = event.Kind(kb)
		dAddr, err := getZig()
		if err != nil {
			return n, fmt.Errorf("trace: event %d truncated: %w", n, err)
		}
		a.Addr = uint64(int64(prev.Addr) + dAddr)
		dTS, err := getZig()
		if err != nil {
			return n, fmt.Errorf("trace: event %d truncated: %w", n, err)
		}
		a.TS = uint64(int64(prev.TS) + dTS)
		vals := make([]uint64, 5)
		for i := range vals {
			if vals[i], err = get(); err != nil {
				return n, fmt.Errorf("trace: event %d truncated: %w", n, err)
			}
		}
		a.Loc = loc.SourceLoc(vals[0])
		a.Var = loc.VarID(vals[1])
		a.CtxID = uint32(vals[2])
		a.IterVec = vals[3]
		a.Thread = int32(vals[4])
		fb, err := br.ReadByte()
		if err != nil {
			return n, fmt.Errorf("trace: event %d truncated: %w", n, err)
		}
		a.Flags = event.Flags(fb)
		sink(a)
		prev = a
		n++
	}
}

// ReadAll loads a whole trace into memory.
func ReadAll(r io.Reader) ([]event.Access, error) {
	var out []event.Access
	_, err := Replay(r, func(a event.Access) { out = append(out, a) })
	return out, err
}
