// Package trace records and replays instrumentation event streams.
//
// A Writer is itself a profiler hook: installed into the interpreter it
// serializes every memory access to a compact delta/varint encoding, so a
// target can be executed once and profiled many times offline (different
// signature sizes, different worker counts) by replaying the trace — the
// same run-once/analyze-often workflow the capture step of the Table I
// experiment uses in memory, made durable.
//
// Traces store the raw access stream, not program metadata; replaying
// reproduces all dependences exactly, while loop-carried classification
// additionally needs the program's loop table (events carry context IDs and
// iteration vectors, which remain meaningful alongside the original
// program).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"ddprof/internal/event"
	"ddprof/internal/loc"
)

const magic = "DDT1"

// Writer streams accesses to an io.Writer. It implements the interpreter's
// Hook interface, so it can be installed directly as the "profiler" of a
// recording run. Writers are not safe for concurrent use; record
// multi-threaded targets through SyncWriter (the serializing wrapper) or
// per-thread writers.
type Writer struct {
	bw    *bufio.Writer
	prev  event.Access
	count uint64
	err   error
}

// NewWriter starts a trace with the default 64KiB serialization buffer.
func NewWriter(w io.Writer) (*Writer, error) {
	return NewWriterSize(w, 0)
}

// NewWriterSize starts a trace with a size-byte serialization buffer. When w
// is a FrameWriter the buffer size is also the wire frame size — every buffer
// flush becomes exactly one frame — so it must stay within the receiving
// daemon's frame cap (DefaultMaxFrame unless configured otherwise). size <= 0
// selects the 64KiB default.
func NewWriterSize(w io.Writer, size int) (*Writer, error) {
	if size <= 0 {
		size = 1 << 16
	}
	bw := bufio.NewWriterSize(w, size)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Access implements the hook: serialize one event.
func (w *Writer) Access(a event.Access) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		if w.err != nil {
			return
		}
		n := binary.PutUvarint(buf[:], v)
		_, w.err = w.bw.Write(buf[:n])
	}
	putZig := func(v int64) {
		put(uint64((v << 1) ^ (v >> 63)))
	}
	w.err = w.bw.WriteByte(byte(a.Kind))
	// Addresses and timestamps are hot and local; delta-encode them.
	putZig(int64(a.Addr) - int64(w.prev.Addr))
	putZig(int64(a.TS) - int64(w.prev.TS))
	put(uint64(a.Loc))
	put(uint64(a.Var))
	put(uint64(a.CtxID))
	put(a.IterVec)
	put(uint64(a.Thread))
	if w.err == nil {
		w.err = w.bw.WriteByte(byte(a.Flags))
	}
	w.prev = a
	w.count++
}

// Count returns the number of events recorded so far.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes the trace; the Writer must not be used afterwards.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Err returns the first serialization error, if any.
func (w *Writer) Err() error { return w.err }

// SyncWriter is the serializing wrapper around Writer: a mutex-protected
// hook safe to install when the target program runs multiple threads, each
// of which calls the hook concurrently. The interleaving recorded is the one
// the run exhibited (per-address order is preserved because targets hold
// their own locks around conflicting accesses and the interpreter calls the
// hook inside the same lock region).
type SyncWriter struct {
	mu sync.Mutex
	w  *Writer
}

// NewSyncWriter wraps w; the underlying Writer must no longer be used
// directly while the wrapper is live.
func NewSyncWriter(w *Writer) *SyncWriter { return &SyncWriter{w: w} }

// Access implements the hook under the wrapper's mutex.
func (s *SyncWriter) Access(a event.Access) {
	s.mu.Lock()
	s.w.Access(a)
	s.mu.Unlock()
}

// Count returns the number of events recorded so far.
func (s *SyncWriter) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Count()
}

// Close flushes the underlying trace.
func (s *SyncWriter) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Close()
}

// Err returns the first serialization error, if any.
func (s *SyncWriter) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Err()
}

// Reader decodes a trace stream one event at a time — the streaming
// counterpart of Replay, used by the ddprofd server to feed network sessions
// into a pipeline without buffering the whole trace.
//
// Reader is hardened against hostile input: a stream cut mid-record returns
// an error wrapping io.ErrUnexpectedEOF, and corrupt bytes (unknown event
// kinds, undefined flag bits, varint overflows) return descriptive errors.
// It never panics.
type Reader struct {
	br   ByteScanner
	prev event.Access
	n    uint64
	// Pending expansion of a decoded range record: Next hands out
	// pendRange.At(pendNext) until the run is drained.
	pendRange event.Range
	pendNext  uint32
	// batchCtl records whether the most recent NextBatch decoded any
	// control record; see BatchControl.
	batchCtl bool
}

// NewReader checks the stream magic and returns a Reader positioned at the
// first event. Inputs that already implement ByteScanner (a *bufio.Reader,
// the daemon's pooled frame stream) are decoded from directly; anything else
// is wrapped in a 64KiB bufio layer.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(ByteScanner)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	m := make([]byte, 4)
	if _, err := io.ReadFull(br, m); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", noEOF(err))
	}
	if string(m) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	return &Reader{br: br}, nil
}

// Count returns the number of events decoded so far.
func (r *Reader) Count() uint64 { return r.n }

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF; any other error
// (including io.ErrUnexpectedEOF itself) passes through.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Next decodes one event, expanding range records (one compressed strided
// run on the wire) into their per-element point accesses. It returns io.EOF
// at a clean end of stream (a record boundary); a stream that ends inside a
// record returns an error wrapping io.ErrUnexpectedEOF instead.
func (r *Reader) Next() (event.Access, error) {
	if r.pendNext < r.pendRange.Count {
		a := r.pendRange.At(r.pendNext)
		r.pendNext++
		return a, nil
	}
	rec, err := r.NextRecord()
	if err != nil {
		return event.Access{}, err
	}
	if rec.IsRange {
		r.pendRange = rec.Range
		r.pendNext = 1
		return rec.Range.At(0), nil
	}
	return rec.Access, nil
}

// Record is one decoded trace record: either a point access or a compressed
// strided run. Exactly one of the two is meaningful, selected by IsRange.
type Record struct {
	Access  event.Access
	Range   event.Range
	IsRange bool
}

// NextRecord decodes one record without expanding ranges — the bulk-ingest
// counterpart of Next, used by ddprofd to feed compressed runs straight into
// a pipeline's range path. Count() advances by the element count of each
// record (a range counts as Count events).
func (r *Reader) NextRecord() (Record, error) {
	var rec Record
	kb, err := r.br.ReadByte()
	if err == io.EOF {
		return rec, io.EOF
	}
	if err != nil {
		return rec, err
	}
	if event.Kind(kb) == event.RangeRef {
		rec.Range, err = r.readRange()
		rec.IsRange = true
		return rec, err
	}
	if event.Kind(kb) > event.Flush && event.Kind(kb) != event.EpochMark {
		// Rebalance control kinds (Migrate/Install/Hold/Promote) are
		// pipeline-internal and never wire-legal; EpochMark is the one
		// control record clients may embed to cut epochs at workload
		// boundaries.
		return rec, fmt.Errorf("trace: event %d: invalid kind %d", r.n, kb)
	}
	rec.Access, err = r.readPoint(kb)
	return rec, err
}

func (r *Reader) get() (uint64, error) {
	v, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, fmt.Errorf("trace: event %d truncated: %w", r.n, noEOF(err))
	}
	return v, nil
}

func (r *Reader) getZig() (int64, error) {
	u, err := r.get()
	return int64(u>>1) ^ -int64(u&1), err
}

// readPoint decodes the body of a point record whose kind byte kb has been
// consumed and validated.
func (r *Reader) readPoint(kb byte) (event.Access, error) {
	var a event.Access
	get := r.get
	getZig := r.getZig
	a.Kind = event.Kind(kb)
	dAddr, err := getZig()
	if err != nil {
		return a, err
	}
	a.Addr = uint64(int64(r.prev.Addr) + dAddr)
	dTS, err := getZig()
	if err != nil {
		return a, err
	}
	a.TS = uint64(int64(r.prev.TS) + dTS)
	var vals [5]uint64
	for i := range vals {
		if vals[i], err = get(); err != nil {
			return a, err
		}
	}
	a.Loc = loc.SourceLoc(vals[0])
	a.Var = loc.VarID(vals[1])
	a.CtxID = uint32(vals[2])
	a.IterVec = vals[3]
	a.Thread = int32(vals[4])
	fb, err := r.br.ReadByte()
	if err != nil {
		return a, fmt.Errorf("trace: event %d truncated: %w", r.n, noEOF(err))
	}
	if event.Flags(fb)&^(event.FlagReduction|event.FlagInduction) != 0 {
		return a, fmt.Errorf("trace: event %d: undefined flag bits %#x", r.n, fb)
	}
	a.Flags = event.Flags(fb)
	r.prev = a
	r.n++
	return a, nil
}

// Replay streams a recorded trace into sink, returning the number of events
// delivered.
func Replay(r io.Reader, sink func(event.Access)) (uint64, error) {
	tr, err := NewReader(r)
	if err != nil {
		return 0, err
	}
	for {
		a, err := tr.Next()
		if err == io.EOF {
			return tr.Count(), nil
		}
		if err != nil {
			return tr.Count(), err
		}
		sink(a)
	}
}

// ReadAll loads a whole trace into memory.
func ReadAll(r io.Reader) ([]event.Access, error) {
	var out []event.Access
	_, err := Replay(r, func(a event.Access) { out = append(out, a) })
	return out, err
}
