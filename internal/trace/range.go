package trace

// DDT1 range records: the wire form of event.Range. A range record starts
// with the RangeRef kind byte, then
//
//	elem kind (1 byte, Read or Write)
//	zigzag delta Base   (from the previous record's final address)
//	zigzag Stride       (signed per-element address delta)
//	uvarint Count       (2 .. maxWireRangeCount)
//	zigzag delta TS     (from the previous record's TS)
//	uvarint Loc, Var, CtxID, IterVec, IterDelta, Thread
//	flags (1 byte)
//
// After a range record the decoder's address/timestamp context is the run's
// last element, so a following point access in the same sweep delta-encodes
// small. Unlike the in-memory Range (whose arithmetic wraps by definition),
// wire ranges must not wrap: a frame whose Base + Stride*(Count-1) leaves the
// address space is rejected as corrupt rather than silently aliasing — the
// decoder never expands an address the encoder did not see.

import (
	"encoding/binary"
	"fmt"

	"ddprof/internal/event"
	"ddprof/internal/loc"
)

// maxWireRangeCount bounds the element count a single range record may carry,
// so a hostile 10-byte frame cannot claim 2^32 events and distort accounting
// before the stream errors out.
const maxWireRangeCount = 1 << 24

// rangeWraps reports whether base + stride*(count-1) leaves the uint64
// address space (in either direction).
func rangeWraps(base uint64, stride int64, count uint32) bool {
	if count < 2 || stride == 0 {
		return false
	}
	span := uint64(count - 1)
	if stride > 0 {
		return span > (^uint64(0)-base)/uint64(stride)
	}
	return span > base/uint64(-stride)
}

// wireRangeOK reports whether r is expressible as a DDT1 range record.
func wireRangeOK(r *event.Range) bool {
	return (r.Kind == event.Read || r.Kind == event.Write) &&
		r.Count >= 2 && r.Count <= maxWireRangeCount &&
		!rangeWraps(r.Base, int64(r.Stride), r.Count)
}

// Range serializes one compressed strided run as a single record. The run
// must be wire-expressible (Read/Write, 2 <= Count <= 1<<24, no address
// wrap); an inexpressible range poisons the Writer with an error instead of
// writing a frame every reader would reject.
func (w *Writer) Range(r event.Range) {
	if w.err != nil {
		return
	}
	if !wireRangeOK(&r) {
		w.err = fmt.Errorf("trace: range not wire-expressible (kind %v, count %d, base %#x, stride %d)",
			r.Kind, r.Count, r.Base, int64(r.Stride))
		return
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		if w.err != nil {
			return
		}
		n := binary.PutUvarint(buf[:], v)
		_, w.err = w.bw.Write(buf[:n])
	}
	putZig := func(v int64) {
		put(uint64((v << 1) ^ (v >> 63)))
	}
	w.err = w.bw.WriteByte(byte(event.RangeRef))
	if w.err == nil {
		w.err = w.bw.WriteByte(byte(r.Kind))
	}
	putZig(int64(r.Base) - int64(w.prev.Addr))
	putZig(int64(r.Stride))
	put(uint64(r.Count))
	putZig(int64(r.TS) - int64(w.prev.TS))
	put(uint64(r.Loc))
	put(uint64(r.Var))
	put(uint64(r.CtxID))
	put(r.IterVec)
	put(r.IterDelta)
	put(uint64(r.Thread))
	if w.err == nil {
		w.err = w.bw.WriteByte(byte(r.Flags))
	}
	w.prev.Addr = r.Last()
	w.prev.TS = r.TS
	w.count += uint64(r.Count)
}

// readRange decodes the body of a range record whose RangeRef kind byte has
// been consumed. It validates every field a hostile stream could abuse —
// element kind, count bounds, address-space wrap, undefined flag bits —
// before committing the run to the decode context.
func (r *Reader) readRange() (event.Range, error) {
	var rg event.Range
	kb, err := r.br.ReadByte()
	if err != nil {
		return rg, fmt.Errorf("trace: event %d truncated: %w", r.n, noEOF(err))
	}
	if k := event.Kind(kb); k != event.Read && k != event.Write {
		return rg, fmt.Errorf("trace: event %d: invalid range element kind %d", r.n, kb)
	}
	rg.Kind = event.Kind(kb)
	dBase, err := r.getZig()
	if err != nil {
		return rg, err
	}
	rg.Base = uint64(int64(r.prev.Addr) + dBase)
	stride, err := r.getZig()
	if err != nil {
		return rg, err
	}
	rg.Stride = uint64(stride)
	cnt, err := r.get()
	if err != nil {
		return rg, err
	}
	if cnt < 2 || cnt > maxWireRangeCount {
		return rg, fmt.Errorf("trace: event %d: range count %d out of bounds", r.n, cnt)
	}
	rg.Count = uint32(cnt)
	if rangeWraps(rg.Base, stride, rg.Count) {
		return rg, fmt.Errorf("trace: event %d: range %#x + %d*%d overflows the address space",
			r.n, rg.Base, stride, rg.Count-1)
	}
	dTS, err := r.getZig()
	if err != nil {
		return rg, err
	}
	rg.TS = uint64(int64(r.prev.TS) + dTS)
	var vals [6]uint64
	for i := range vals {
		if vals[i], err = r.get(); err != nil {
			return rg, err
		}
	}
	rg.Loc = loc.SourceLoc(vals[0])
	rg.Var = loc.VarID(vals[1])
	rg.CtxID = uint32(vals[2])
	rg.IterVec = vals[3]
	rg.IterDelta = vals[4]
	rg.Thread = int32(vals[5])
	fb, err := r.br.ReadByte()
	if err != nil {
		return rg, fmt.Errorf("trace: event %d truncated: %w", r.n, noEOF(err))
	}
	if event.Flags(fb)&^(event.FlagReduction|event.FlagInduction) != 0 {
		return rg, fmt.Errorf("trace: event %d: undefined flag bits %#x", r.n, fb)
	}
	rg.Flags = event.Flags(fb)
	r.prev.Addr = rg.Last()
	r.prev.TS = rg.TS
	r.n += uint64(rg.Count)
	return rg, nil
}
