package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/interp"
	"ddprof/internal/loc"
	ml "ddprof/internal/minilang"
)

func randomEvents(n int, seed int64) []event.Access {
	r := rand.New(rand.NewSource(seed))
	out := make([]event.Access, n)
	for i := range out {
		out[i] = event.Access{
			Addr:    0x10000 + uint64(r.Intn(4096))*8,
			TS:      uint64(i + 1),
			IterVec: r.Uint64(),
			Loc:     loc.Pack(1, 1+r.Intn(200)),
			Var:     loc.VarID(r.Intn(50)),
			CtxID:   uint32(r.Intn(16)),
			Thread:  int32(r.Intn(4)),
			Kind:    event.Kind(r.Intn(2)),
			Flags:   event.Flags(r.Intn(4)),
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	evs := randomEvents(5000, 42)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range evs {
		w.Access(a)
	}
	if w.Count() != 5000 {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("replayed %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d mismatch:\n got %+v\nwant %+v", i, got[i], evs[i])
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty trace: %v events, err %v", len(got), err)
	}
}

func TestReplayErrors(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadAll(strings.NewReader("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated event.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Access(event.Access{Addr: 0x1000, Kind: event.Write, Loc: loc.Pack(1, 1)})
	_ = w.Close()
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadAll(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

// TestRecordReplayProfileEquivalence: profiling a replayed trace must yield
// exactly the dependences of profiling the live run.
func TestRecordReplayProfileEquivalence(t *testing.T) {
	build := func() *ml.Program {
		p := ml.New("traced")
		p.MainFunc(func(b *ml.Block) {
			b.Decl("n", ml.Ci(100))
			b.DeclArr("a", ml.V("n"))
			b.Decl("sum", ml.Ci(0))
			b.For("i", ml.Ci(0), ml.V("n"), ml.Ci(1), ml.LoopOpt{Name: "fill"}, func(l *ml.Block) {
				l.Set("a", ml.V("i"), ml.Mul(ml.V("i"), ml.V("i")))
				l.Reduce("sum", ml.OpAdd, ml.Idx("a", ml.V("i")))
			})
			b.Free("a")
		})
		return p
	}

	// Live profile.
	live := core.NewSerial(core.Config{Backend: "perfect"})
	if _, err := interp.Run(build(), live, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	liveRes := live.Flush()

	// Record, then replay into a fresh profiler.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(build(), w, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	replayed := core.NewSerial(core.Config{Backend: "perfect"})
	n, err := Replay(&buf, replayed.Access)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events replayed")
	}
	repRes := replayed.Flush()

	if liveRes.Deps.Unique() != repRes.Deps.Unique() {
		t.Fatalf("unique deps: live %d vs replay %d", liveRes.Deps.Unique(), repRes.Deps.Unique())
	}
	liveRes.Deps.Range(func(k dep.Key, st dep.Stats) bool {
		rst, ok := repRes.Deps.Lookup(k)
		if !ok || rst.Count != st.Count {
			t.Errorf("replay diverged for %+v: %+v vs %+v", k, rst, st)
			return false
		}
		return true
	})
}

func TestCompression(t *testing.T) {
	// A sequential sweep (small deltas) must encode far below the naive
	// ~45 bytes/event struct size.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	const n = 10000
	for i := 0; i < n; i++ {
		w.Access(event.Access{
			Addr: 0x10000 + uint64(i)*8,
			TS:   uint64(i),
			Loc:  loc.Pack(1, 7),
			Kind: event.Write,
		})
	}
	_ = w.Close()
	perEvent := float64(buf.Len()) / n
	if perEvent > 16 {
		t.Errorf("sweep trace uses %.1f bytes/event, want <16 (naive struct is ~45)", perEvent)
	}
}
