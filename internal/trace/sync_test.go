package trace

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"

	"ddprof/internal/event"
	"ddprof/internal/interp"
	"ddprof/internal/loc"
	ml "ddprof/internal/minilang"
)

// TestSyncWriterConcurrent hammers one SyncWriter from four goroutines; the
// resulting trace must hold every event and replay cleanly (run under -race).
func TestSyncWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSyncWriter(w)
	const threads, perThread = 4, 2000
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				sw.Access(event.Access{
					Addr:   0x10000 + uint64(th*perThread+i)*8,
					TS:     uint64(i + 1),
					Loc:    loc.Pack(1, 1+th),
					Kind:   event.Kind(i & 1),
					Thread: int32(th),
				})
			}
		}(th)
	}
	wg.Wait()
	if got := sw.Count(); got != threads*perThread {
		t.Fatalf("Count = %d, want %d", got, threads*perThread)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("replay of concurrently recorded trace: %v", err)
	}
	if len(evs) != threads*perThread {
		t.Fatalf("replayed %d events, want %d", len(evs), threads*perThread)
	}
	perTh := make(map[int32]int)
	for _, a := range evs {
		perTh[a.Thread]++
	}
	for th := int32(0); th < threads; th++ {
		if perTh[th] != perThread {
			t.Errorf("thread %d recorded %d events, want %d", th, perTh[th], perThread)
		}
	}
}

// TestSyncWriterMTWorkload records a 4-thread minilang target through a
// SyncWriter hook; the interpreter calls the hook from all target threads
// concurrently.
func TestSyncWriterMTWorkload(t *testing.T) {
	p := ml.New("mt-trace")
	p.MainFunc(func(b *ml.Block) {
		b.DeclArr("a", ml.Ci(64))
		b.Decl("sum", ml.Ci(0))
		b.Spawn(4, func(tb *ml.Block) {
			tb.For("i", ml.Ci(0), ml.Ci(16), ml.Ci(1), ml.LoopOpt{Name: "work"}, func(l *ml.Block) {
				l.Set("a", ml.Add(ml.Mul(ml.Tid(), ml.Ci(16)), ml.V("i")), ml.V("i"))
				l.Lock("m", func(cb *ml.Block) {
					cb.Reduce("sum", ml.OpAdd, ml.Idx("a", ml.Add(ml.Mul(ml.Tid(), ml.Ci(16)), ml.V("i"))))
				})
			})
		})
		b.Free("a")
	})

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSyncWriter(w)
	info, err := interp.Run(p, sw, interp.Options{Timestamps: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if uint64(len(evs)) != sw.Count() {
		t.Fatalf("replayed %d events, recorded %d", len(evs), sw.Count())
	}
	var rw uint64
	for _, a := range evs {
		if a.Kind == event.Read || a.Kind == event.Write {
			rw++
		}
	}
	if rw != info.Accesses {
		t.Fatalf("trace holds %d read/write events, interpreter reports %d accesses", rw, info.Accesses)
	}
	threads := make(map[int32]bool)
	for _, a := range evs {
		threads[a.Thread] = true
	}
	if len(threads) < 4 {
		t.Errorf("trace shows %d distinct threads, want >= 4", len(threads))
	}
}

// TestReaderTruncation cuts a valid trace at every byte offset: each cut must
// either replay a clean prefix (cut on an event boundary) or fail with an
// error wrapping io.ErrUnexpectedEOF — never panic, never misparse.
func TestReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, a := range randomEvents(20, 7) {
		w.Access(a)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	sawTruncErr := false
	for cut := 0; cut < len(full); cut++ {
		evs, err := ReadAll(bytes.NewReader(full[:cut]))
		if cut < len(magic) {
			if err == nil {
				t.Fatalf("cut %d: truncated magic accepted", cut)
			}
			continue
		}
		if err == nil {
			continue // cut fell on an event boundary: a valid shorter trace
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d (%d events in): error %v does not wrap io.ErrUnexpectedEOF", cut, len(evs), err)
		}
		sawTruncErr = true
	}
	if !sawTruncErr {
		t.Fatal("no cut produced a truncation error")
	}
}

// TestReaderRejectsCorruptBytes checks the two validation paths: unknown event
// kinds and undefined flag bits.
func TestReaderRejectsCorruptBytes(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Access(event.Access{Addr: 0x1000, Kind: event.Write, Loc: loc.Pack(1, 1)})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := bytes.Clone(good)
	bad[4] = 0xff // event kind
	if _, err := ReadAll(bytes.NewReader(bad)); err == nil {
		t.Error("invalid event kind accepted")
	}
	bad = bytes.Clone(good)
	bad[len(bad)-1] = 0xf0 // flags byte
	if _, err := ReadAll(bytes.NewReader(bad)); err == nil {
		t.Error("undefined flag bits accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	chunks := [][]byte{[]byte("hello"), {}, []byte("frame"), bytes.Repeat([]byte{0xab}, 3000)}
	var want []byte
	for _, c := range chunks {
		if _, err := fw.Write(c); err != nil {
			t.Fatal(err)
		}
		want = append(want, c...)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write([]byte("late")); err == nil {
		t.Error("write after Close accepted")
	}

	fr := NewFrameReader(&buf, 0)
	got, err := io.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("payload mismatch: %d bytes vs %d", len(got), len(want))
	}
	if !fr.Terminated() {
		t.Error("Terminated() false after clean end of stream")
	}
}

// TestFrameTruncation: transport EOF before the terminator must surface as an
// io.ErrUnexpectedEOF-wrapping error, not a clean EOF.
func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.Write([]byte("0123456789"))
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		fr := NewFrameReader(bytes.NewReader(full[:cut]), 0)
		_, err := io.ReadAll(fr)
		if err == nil {
			t.Fatalf("cut %d: truncated framed stream read cleanly", cut)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: error %v does not wrap io.ErrUnexpectedEOF", cut, err)
		}
		if fr.Terminated() {
			t.Fatalf("cut %d: Terminated() true without terminator", cut)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.Write(bytes.Repeat([]byte{1}, 100))
	fw.Close()
	fr := NewFrameReader(&buf, 50)
	if _, err := io.ReadAll(fr); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err = %v, want ErrFrameTooLarge", err)
	}
}

// TestFramedTrace runs a whole DDT1 trace through the framing layer, the way
// the ddprofd session path does.
func TestFramedTrace(t *testing.T) {
	evs := randomEvents(3000, 99)
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	w, err := NewWriter(fw)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range evs {
		w.Access(a)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewFrameReader(&buf, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("replayed %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d mismatch:\n got %+v\nwant %+v", i, got[i], evs[i])
		}
	}
}
