package trace

// Compactor is the recording-side half of range compression: an exact,
// consecutive-only run detector between the instrumentation hook and a
// Writer. It folds a run of accesses that are literally adjacent in the
// stream — same instruction metadata, addresses advancing by a fixed stride,
// iteration vectors advancing by a fixed delta, equal timestamps — into one
// DDT1 range record; anything else (including the first non-extending event)
// flushes the open run and passes through as points, so replaying the trace
// reproduces the recorded stream event-for-event in order.
//
// Consecutive-only is a deliberate limitation: two instructions whose
// accesses interleave (a[i] = b[i] sweeping two arrays) never form runs here,
// because reordering them on the wire would change the per-address
// interleaving the profile depends on. The profiler's own producer carries
// per-instruction detectors and a last-touch table to compress interleaved
// streams safely; the trace layer stays order-preserving and simple.
//
// Compactor serializes its callers the way SyncWriter does, so it can be
// installed directly as the hook of a multi-threaded recording run (where
// distinct timestamps keep runs from forming, and events simply pass
// through).

import (
	"sync"

	"ddprof/internal/event"
)

// compactMin is the run length worth a range record: a 2-element range record
// is larger than two delta-encoded points, so runs shorter than 3 flush as
// points.
const compactMin = 3

// Compactor folds consecutive strided accesses into range records on their
// way into w. The wrapped Writer must not be used directly while the
// Compactor is live.
type Compactor struct {
	mu  sync.Mutex
	w   *Writer
	run event.Range // open candidate; Count==0 none, Count==1 bare point
}

// NewCompactor wraps w.
func NewCompactor(w *Writer) *Compactor { return &Compactor{w: w} }

// sameRunMeta reports whether a could belong to the open run: every field a
// Range shares across its elements must match exactly.
func (c *Compactor) sameRunMeta(a *event.Access) bool {
	r := &c.run
	return a.Loc == r.Loc && a.Var == r.Var && a.CtxID == r.CtxID &&
		a.Thread == r.Thread && a.Kind == r.Kind && a.Flags == r.Flags &&
		a.TS == r.TS
}

// Access implements the hook: extend the open run or flush and restart it.
func (c *Compactor) Access(a event.Access) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a.Rep != 0 || (a.Kind != event.Read && a.Kind != event.Write) {
		c.flushLocked()
		c.w.Access(a)
		return
	}
	switch {
	case c.run.Count == 0:
		// Fall through to restart below.
	case c.run.Count == 1:
		if c.sameRunMeta(&a) {
			c.run.Stride = a.Addr - c.run.Base
			c.run.IterDelta = a.IterVec - c.run.IterVec
			c.run.Count = 2
			return
		}
		c.flushLocked()
	default:
		if c.sameRunMeta(&a) && c.run.Count < maxWireRangeCount &&
			a.Addr == c.run.Base+uint64(c.run.Count)*c.run.Stride &&
			a.IterVec == c.run.IterVec+uint64(c.run.Count)*c.run.IterDelta {
			c.run.Count++
			return
		}
		c.flushLocked()
	}
	c.run = event.Range{
		Base: a.Addr, TS: a.TS, IterVec: a.IterVec,
		Loc: a.Loc, Var: a.Var, CtxID: a.CtxID,
		Thread: a.Thread, Kind: a.Kind, Flags: a.Flags,
		Count: 1,
	}
}

// flushLocked drains the open run: long enough and wire-expressible runs go
// out as one range record, everything else as points.
func (c *Compactor) flushLocked() {
	r := c.run
	c.run.Count = 0
	if r.Count == 0 {
		return
	}
	if r.Count >= compactMin && wireRangeOK(&r) {
		c.w.Range(r)
		return
	}
	for j := uint32(0); j < r.Count; j++ {
		c.w.Access(r.At(j))
	}
}

// Flush drains the open run without closing the underlying Writer.
func (c *Compactor) Flush() {
	c.mu.Lock()
	c.flushLocked()
	c.mu.Unlock()
}

// Count returns the number of events recorded so far, open run included.
func (c *Compactor) Count() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.w.Count() + uint64(c.run.Count)
}

// Close drains the open run and flushes the trace.
func (c *Compactor) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	return c.w.Close()
}

// Err returns the first serialization error, if any.
func (c *Compactor) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.w.Err()
}
