package minilang

import "testing"

// FuzzParseProgram hardens the front-end: arbitrary source must parse or
// error, never panic or hang.
func FuzzParseProgram(f *testing.F) {
	f.Add(demoSrc)
	f.Add(`func main() { spawn 2 { lock m { barrier } } }`)
	f.Add(`func main() { var x = len(a) + tid }`)
	f.Add(`file "x.c"` + "\n" + `func main() { return }`)
	f.Add(`func main() { for i = 0; i < 10; i += 1 omp "l" { a[i] += 1 } }`)
	f.Add("func main() { var x = 0x1F % 7 }")
	f.Add("{}{}{}((((")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseProgram("fuzz.ml", src)
		if err != nil {
			return
		}
		if p.Funcs["main"] == nil {
			t.Fatal("nil-error parse without main")
		}
	})
}
