package minilang

import (
	"strings"
	"testing"
)

const demoSrc = `// demo program
func main() {
    var n = 10
    arr a[n]
    var sum = 0
    for i = 0; i < n; i += 1 omp "fill" {
        a[i] = i * i
    }
    for i = 0; i < n; i += 1 "sum" {
        sum += a[i]
    }
    if sum > 100 {
        sum = sum - 100
    } else {
        sum = 0
    }
    free a
}
`

func TestParseProgramStructure(t *testing.T) {
	p, err := ParseProgram("demo.ml", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	main := p.Funcs["main"]
	if main == nil {
		t.Fatal("no main")
	}
	// var n, arr a, var sum, for, for, if, free = 7 statements.
	if len(main.Body) != 7 {
		t.Fatalf("main has %d statements: %#v", len(main.Body), main.Body)
	}
	// Physical source lines: 'var n' is on line 3 of the source.
	l, _ := main.Body[0].Pos()
	if l.Line() != 3 {
		t.Errorf("var n at line %d, want 3", l.Line())
	}
	fs, ok := main.Body[3].(*ForStmt)
	if !ok {
		t.Fatalf("statement 3 is %T", main.Body[3])
	}
	if fs.Var != "i" {
		t.Errorf("loop var = %q", fs.Var)
	}
	fl, _ := fs.Pos()
	if fl.Line() != 6 {
		t.Errorf("first for at line %d, want 6", fl.Line())
	}
	if fs.EndLine.Line() != 8 {
		t.Errorf("first for END at line %d, want 8 (closing brace)", fs.EndLine.Line())
	}
	loops := p.Meta.Loops()
	if len(loops) != 2 {
		t.Fatalf("loops = %d", len(loops))
	}
	if loops[0].Name != "fill" || !loops[0].OMP {
		t.Errorf("loop 0 = %+v", loops[0])
	}
	if loops[1].Name != "sum" || loops[1].OMP {
		t.Errorf("loop 1 = %+v", loops[1])
	}
	// The sum loop's accumulator statement is a reduction.
	fs2 := main.Body[4].(*ForStmt)
	as := fs2.Body[0].(*AssignStmt)
	if !as.Reduction {
		t.Error("+= must parse as a reduction")
	}
}

func TestParsedProgramRunsLikeBuilt(t *testing.T) {
	// The parsed demo must compute the same result as the equivalent
	// builder-constructed program. (Execution happens via the interp
	// package; here we just validate structural equivalence of the loop
	// metadata and leave execution to the interp test suite.)
	p, err := ParseProgram("demo.ml", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tab.Var("sum") == 0 || p.Tab.Var("a") == 0 {
		t.Error("variables not interned")
	}
}

func TestParseThreads(t *testing.T) {
	src := `
func main() {
    var counter = 0
    spawn 4 {
        var mine = tid
        lock m {
            counter += mine
        }
        barrier
    }
}
`
	p, err := ParseProgram("mt.ml", src)
	if err != nil {
		t.Fatal(err)
	}
	sp := p.Funcs["main"].Body[1].(*SpawnStmt)
	if sp.Threads != 4 || len(sp.Body) != 3 {
		t.Fatalf("spawn = %+v", sp)
	}
	lk := sp.Body[1].(*LockStmt)
	if lk.Mutex != "m" {
		t.Errorf("mutex = %q", lk.Mutex)
	}
	if _, ok := sp.Body[2].(*BarrierStmt); !ok {
		t.Error("barrier missing")
	}
}

func TestParseFunctionsAndCalls(t *testing.T) {
	src := `
func scale(a, n, k) {
    for i = 0; i < n; i += 1 {
        a[i] = a[i] * k
    }
}
func total(a, n) {
    var acc = 0
    for i = 0; i < n; i += 1 {
        acc += a[i]
    }
    return acc
}
func main() {
    var n = 8
    arr data[n]
    for i = 0; i < n; i += 1 { data[i] = i }
    scale(data, n, 3)
    var r = total(data, n)
    while r > 50 { r = r - 10 }
}
`
	p, err := ParseProgram("fn.ml", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != 3 {
		t.Fatalf("funcs = %d", len(p.Funcs))
	}
	if got := p.Funcs["scale"].Params; len(got) != 3 {
		t.Errorf("scale params = %v", got)
	}
	// Call statement and call expression both present in main.
	var haveCallStmt, haveWhile bool
	for _, st := range p.Funcs["main"].Body {
		switch st.(type) {
		case *CallStmt:
			haveCallStmt = true
		case *WhileStmt:
			haveWhile = true
		}
	}
	if !haveCallStmt || !haveWhile {
		t.Error("call statement or while missing")
	}
}

func TestParseFileDirective(t *testing.T) {
	src := `
func helper() { return 1 }
file "second.c"
func main() {
    var x = helper()
}
`
	p, err := ParseProgram("first.c", src)
	if err != nil {
		t.Fatal(err)
	}
	hLine, _ := p.Funcs["helper"].Body[0].Pos()
	mLine, _ := p.Funcs["main"].Body[0].Pos()
	if hLine.File() == mLine.File() {
		t.Error("file directive did not switch files")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	src := `
func main() {
    var r = 2 + 3 * 4
    var s = (2 + 3) * 4
    var t1 = 1 << 3 | 1
    var u = -2 * 3
    var v = 1 < 2 && 3 >= 3
    var w = 0xFF % 7
}
`
	p, err := ParseProgram("prec.ml", src)
	if err != nil {
		t.Fatal(err)
	}
	body := p.Funcs["main"].Body
	// r = 2 + (3*4): top op Add.
	if be := body[0].(*DeclStmt).Init.(*BinExpr); be.Op != OpAdd {
		t.Errorf("r top op = %d", be.Op)
	}
	// s = (2+3) * 4: top op Mul.
	if be := body[1].(*DeclStmt).Init.(*BinExpr); be.Op != OpMul {
		t.Errorf("s top op = %d", be.Op)
	}
	// t1 top op BOr.
	if be := body[2].(*DeclStmt).Init.(*BinExpr); be.Op != OpBOr {
		t.Errorf("t1 top op = %d", be.Op)
	}
	// u: Mul(Neg(2), 3).
	if be := body[3].(*DeclStmt).Init.(*BinExpr); be.Op != OpMul {
		t.Errorf("u top op = %d", be.Op)
	} else if _, ok := be.L.(*UnExpr); !ok {
		t.Error("u left not unary")
	}
	// v top op And.
	if be := body[4].(*DeclStmt).Init.(*BinExpr); be.Op != OpAnd {
		t.Errorf("v top op = %d", be.Op)
	}
	// w: Mod with hex left.
	if be := body[5].(*DeclStmt).Init.(*BinExpr); be.Op != OpMod {
		t.Errorf("w top op = %d", be.Op)
	} else if c := be.L.(*ConstExpr); c.V != 255 {
		t.Errorf("hex literal = %v", c.V)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"nomain", `func helper() { return 1 }`, "no main"},
		{"badtop", `var x = 1`, "expected 'func'"},
		{"dupfunc", "func f() { return 1 }\nfunc f() { return 2 }", "defined twice"},
		{"badfor", `func main() { for i = 0; j < 2; i += 1 { } }`, "loop variable"},
		{"badstep", `func main() { for i = 0; i < 2; j += 1 { } }`, "loop variable"},
		{"unterminated", `func main() { var x = 1`, "end of file"},
		{"badchar", "func main() { var x = 1 @ }", "unexpected character"},
		{"badstring", "func main() { var x = 1 }\nfile \"unterminated", "unterminated string"},
		{"spawnvar", `func main() { spawn n { } }`, "literal thread count"},
		{"badassign", `func main() { x ) }`, "expected assignment"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseProgram("err.ml", c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want containing %q", err, c.want)
			}
		})
	}
}
