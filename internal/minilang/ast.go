// Package minilang defines the small imperative intermediate representation
// the profiler's instrumentation substrate executes.
//
// The paper instruments LLVM IR compiled from C/C++; Go has no equivalent
// native instrumentation path, so target programs in this repository are
// written in minilang — a language with scalars, arrays (dynamically sized,
// i.e. pointer-like storage), arithmetic, loops, branches, functions,
// dynamic allocation/deallocation, threads and mutexes. The interpreter
// (internal/interp) assigns every scalar and array element a simulated
// memory address and reports every read and write to the profiler, which is
// exactly the event stream an exhaustive LLVM instrumentation pass produces.
//
// Programs are constructed through the Builder API (builder.go); every
// statement receives a unique, increasing source line so profiled
// dependences carry meaningful "file:line" locations.
package minilang

import (
	"ddprof/internal/loc"
	"ddprof/internal/prog"
)

// Program is a complete minilang target program.
type Program struct {
	Name string
	// Tab interns this program's file and variable names.
	Tab *loc.Table
	// Meta is the static loop metadata consumed by the profiler.
	Meta *prog.Meta
	// FileID is the file statements are currently being built into
	// (initially the program's own name, ID 1; see SetFile).
	FileID loc.FileID
	// Funcs maps function names to definitions. "main" is the entry point.
	Funcs map[string]*Func

	nextLine int
	lines    map[loc.FileID]int // per-file line counters
}

// Func is a function definition. Parameters are passed by value; arrays are
// passed by reference (the binding is shared).
type Func struct {
	Name   string
	Params []string
	Body   []Stmt
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv  // float division
	OpIDiv // integer division
	OpMod  // integer modulo
	OpBAnd
	OpBOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd // logical, short-circuit
	OpOr  // logical, short-circuit
)

// UnOp enumerates unary operators.
type UnOp uint8

const (
	OpNeg UnOp = iota
	OpNot
)

// Expr is a minilang expression. Expressions evaluate to float64; integer
// operators truncate. Reading a variable or array element emits a Read
// access event.
type Expr interface{ exprNode() }

// ConstExpr is a literal.
type ConstExpr struct{ V float64 }

// VarExpr reads a scalar variable.
type VarExpr struct{ Name string }

// IndexExpr reads arr[idx].
type IndexExpr struct {
	Name string
	Idx  Expr
}

// LenExpr yields an array's length without touching memory.
type LenExpr struct{ Name string }

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

// UnExpr applies a unary operator.
type UnExpr struct {
	Op UnOp
	X  Expr
}

// CallExpr calls a builtin ("sqrt", "abs", "floor", "min", "max", "sin",
// "cos", "exp", "log", "pow") or a user function and yields its return
// value.
type CallExpr struct {
	Fn   string
	Args []Expr
}

// TidExpr yields the executing thread's ID (0 outside Spawn) without
// touching memory.
type TidExpr struct{}

func (*ConstExpr) exprNode() {}
func (*VarExpr) exprNode()   {}
func (*IndexExpr) exprNode() {}
func (*LenExpr) exprNode()   {}
func (*BinExpr) exprNode()   {}
func (*UnExpr) exprNode()    {}
func (*CallExpr) exprNode()  {}
func (*TidExpr) exprNode()   {}

// Stmt is a minilang statement. Each carries the source line assigned at
// build time and the static loop context it appears in.
type Stmt interface {
	stmtNode()
	// Pos returns the statement's source line and static loop context.
	Pos() (loc.SourceLoc, uint32)
}

// pos is embedded by all statements.
type pos struct {
	Line loc.SourceLoc
	Ctx  uint32
}

func (p pos) Pos() (loc.SourceLoc, uint32) { return p.Line, p.Ctx }

// DeclStmt declares (allocates) a scalar and writes its initial value.
// Re-executing a declaration reuses the existing storage of the enclosing
// frame, modeling a C block-scoped local.
type DeclStmt struct {
	pos
	Name string
	Init Expr
}

// DeclArrStmt declares an array of dynamic size — the minilang equivalent
// of malloc, the dynamically allocated memory static analyses cannot track.
type DeclArrStmt struct {
	pos
	Name string
	Size Expr
}

// AssignStmt stores into a scalar. Reduction marks "x = x ⊕ e" statements.
type AssignStmt struct {
	pos
	Name      string
	Val       Expr
	Reduction bool
}

// AssignIdxStmt stores into arr[idx].
type AssignIdxStmt struct {
	pos
	Name      string
	Idx       Expr
	Val       Expr
	Reduction bool
}

// ForStmt is a counted loop: for v = From; v < To; v += Step. The loop
// variable is real storage: initialization writes it, the condition reads
// it, and the increment reads and writes it, all attributed to the loop's
// line — reproducing the {RAW i} {WAR i} self-dependences of Figure 1.
type ForStmt struct {
	pos
	Var      string
	From, To Expr
	Step     Expr
	Body     []Stmt
	Loop     prog.LoopID
	BodyCtx  uint32
	EndLine  loc.SourceLoc
}

// WhileStmt loops while Cond is non-zero.
type WhileStmt struct {
	pos
	Cond    Expr
	Body    []Stmt
	Loop    prog.LoopID
	BodyCtx uint32
	EndLine loc.SourceLoc
}

// IfStmt branches on Cond.
type IfStmt struct {
	pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// CallStmt calls a user function for effect.
type CallStmt struct {
	pos
	Fn   string
	Args []Expr
}

// ReturnStmt returns from the current function with an optional value.
type ReturnStmt struct {
	pos
	Val Expr // may be nil
}

// FreeStmt deallocates a scalar or array. The interpreter emits Remove
// events for every word, driving the profiler's variable-lifetime analysis,
// and recycles the address range.
type FreeStmt struct {
	pos
	Name string
}

// SpawnStmt runs Body on Threads concurrent target threads and joins them.
// Inside the body, Tid() yields the thread ID.
type SpawnStmt struct {
	pos
	Threads int
	Body    []Stmt
}

// LockStmt executes Body while holding the named mutex. Instrumentation of
// accesses inside the region happens inside the lock (paper Figure 4).
type LockStmt struct {
	pos
	Mutex string
	Body  []Stmt
}

// BarrierStmt synchronizes all threads of the enclosing Spawn.
type BarrierStmt struct {
	pos
}

func (*DeclStmt) stmtNode()      {}
func (*DeclArrStmt) stmtNode()   {}
func (*AssignStmt) stmtNode()    {}
func (*AssignIdxStmt) stmtNode() {}
func (*ForStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()     {}
func (*IfStmt) stmtNode()        {}
func (*CallStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()    {}
func (*FreeStmt) stmtNode()      {}
func (*SpawnStmt) stmtNode()     {}
func (*LockStmt) stmtNode()      {}
func (*BarrierStmt) stmtNode()   {}
