package minilang

import (
	"fmt"
	"strconv"
	"strings"

	"ddprof/internal/loc"
	"ddprof/internal/prog"
)

// ParseProgram parses minilang source text into a Program, giving every
// statement its physical source line so profiled dependences point back
// into the file. The syntax is a small C-like language:
//
//	// one function per 'func'; 'main' is the entry point
//	func main() {
//	    var n = 100            // scalar declaration
//	    arr a[n]               // array (dynamic) allocation
//	    var sum = 0
//	    for i = 0; i < n; i += 1 omp "fill" {
//	        a[i] = i * i
//	    }
//	    for i = 0; i < n; i += 1 "sum" {
//	        sum += a[i]        // '+=' / '*=' mark reductions
//	    }
//	    while sum > 10 "shrink" { sum = sum / 2 }
//	    if sum == 0 { sum = 1 } else { sum = sum - 1 }
//	    spawn 4 {
//	        lock m { sum += tid }
//	        barrier
//	    }
//	    free a
//	}
//
// Loop headers take an optional `omp` marker (Table II ground truth) and an
// optional quoted name. Expressions support || && | ^ & relational shifts
// + - * / % unary -/!, calls f(x), a[i], len(a), tid, and numeric literals.
// A `file "name.c"` directive switches the source file attribution.
func ParseProgram(name, src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := New(name)
	ps := &parser{toks: toks, p: p}
	if err := ps.program(); err != nil {
		return nil, err
	}
	if p.Funcs["main"] == nil {
		return nil, fmt.Errorf("minilang: source defines no main function")
	}
	return p, nil
}

type parser struct {
	toks []token
	pos  int
	p    *Program
	ctx  uint32
}

// cur returns the current token; past the end it keeps returning the EOF
// sentinel so error paths cannot run off the slice.
func (ps *parser) cur() token {
	if ps.pos >= len(ps.toks) {
		return ps.toks[len(ps.toks)-1]
	}
	return ps.toks[ps.pos]
}

func (ps *parser) next() token {
	t := ps.cur()
	if ps.pos < len(ps.toks) {
		ps.pos++
	}
	return t
}

func (ps *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", ps.cur().line, fmt.Sprintf(format, args...))
}

// expect consumes a punct/keyword with the given text.
func (ps *parser) expect(text string) error {
	if ps.cur().text != text {
		return ps.errf("expected %q, found %q", text, ps.cur().text)
	}
	ps.pos++
	return nil
}

// at builds a statement position at the given physical line.
func (ps *parser) at(line int) pos {
	return pos{Line: loc.Pack(ps.p.FileID, line), Ctx: ps.ctx}
}

// program parses top-level declarations.
func (ps *parser) program() error {
	for ps.cur().kind != tEOF {
		switch {
		case ps.cur().text == "func":
			if err := ps.function(); err != nil {
				return err
			}
		case ps.cur().text == "file":
			ps.next()
			if ps.cur().kind != tString {
				return ps.errf("file directive needs a quoted name")
			}
			ps.p.SetFile(ps.next().text)
		default:
			return ps.errf("expected 'func' or 'file', found %q", ps.cur().text)
		}
	}
	return nil
}

func (ps *parser) function() error {
	ps.next() // func
	if ps.cur().kind != tIdent {
		return ps.errf("function name expected")
	}
	name := ps.next().text
	if _, dup := ps.p.Funcs[name]; dup {
		return ps.errf("function %q defined twice", name)
	}
	if err := ps.expect("("); err != nil {
		return err
	}
	var params []string
	for ps.cur().text != ")" {
		if ps.cur().kind != tIdent {
			return ps.errf("parameter name expected")
		}
		prm := ps.next().text
		params = append(params, prm)
		ps.p.Tab.Var(prm)
		if ps.cur().text == "," {
			ps.next()
		}
	}
	ps.next() // )
	body, err := ps.block()
	if err != nil {
		return err
	}
	ps.p.Funcs[name] = &Func{Name: name, Params: params, Body: body}
	return nil
}

// block parses "{ stmts }".
func (ps *parser) block() ([]Stmt, error) {
	if err := ps.expect("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for ps.cur().text != "}" {
		if ps.cur().kind == tEOF {
			return nil, ps.errf("unexpected end of file in block")
		}
		st, err := ps.statement()
		if err != nil {
			return nil, err
		}
		if st != nil {
			out = append(out, st)
		}
	}
	ps.next() // }
	return out, nil
}

func (ps *parser) statement() (Stmt, error) {
	t := ps.cur()
	switch {
	case t.text == ";":
		ps.next()
		return nil, nil
	case t.text == "var":
		return ps.varDecl()
	case t.text == "arr":
		return ps.arrDecl()
	case t.text == "for":
		return ps.forStmt()
	case t.text == "while":
		return ps.whileStmt()
	case t.text == "if":
		return ps.ifStmt()
	case t.text == "spawn":
		return ps.spawnStmt()
	case t.text == "lock":
		return ps.lockStmt()
	case t.text == "barrier":
		ps.next()
		return &BarrierStmt{pos: ps.at(t.line)}, nil
	case t.text == "free":
		ps.next()
		if ps.cur().kind != tIdent {
			return nil, ps.errf("free needs a variable name")
		}
		return &FreeStmt{pos: ps.at(t.line), Name: ps.next().text}, nil
	case t.text == "return":
		ps.next()
		st := &ReturnStmt{pos: ps.at(t.line)}
		if ps.cur().text != ";" && ps.cur().text != "}" {
			v, err := ps.expr()
			if err != nil {
				return nil, err
			}
			st.Val = v
		}
		return st, nil
	case t.kind == tIdent:
		return ps.assignOrCall()
	}
	return nil, ps.errf("unexpected token %q", t.text)
}

func (ps *parser) varDecl() (Stmt, error) {
	line := ps.next().line // var
	if ps.cur().kind != tIdent {
		return nil, ps.errf("variable name expected")
	}
	name := ps.next().text
	ps.p.Tab.Var(name)
	if err := ps.expect("="); err != nil {
		return nil, err
	}
	init, err := ps.expr()
	if err != nil {
		return nil, err
	}
	return &DeclStmt{pos: ps.at(line), Name: name, Init: init}, nil
}

func (ps *parser) arrDecl() (Stmt, error) {
	line := ps.next().line // arr
	if ps.cur().kind != tIdent {
		return nil, ps.errf("array name expected")
	}
	name := ps.next().text
	ps.p.Tab.Var(name)
	if err := ps.expect("["); err != nil {
		return nil, err
	}
	size, err := ps.expr()
	if err != nil {
		return nil, err
	}
	if err := ps.expect("]"); err != nil {
		return nil, err
	}
	return &DeclArrStmt{pos: ps.at(line), Name: name, Size: size}, nil
}

// assignOrCall parses `x = e`, `x += e`, `a[i] = e`, `a[i] += e`, `f(args)`.
func (ps *parser) assignOrCall() (Stmt, error) {
	line := ps.cur().line
	name := ps.next().text
	switch ps.cur().text {
	case "(":
		args, err := ps.callArgs()
		if err != nil {
			return nil, err
		}
		return &CallStmt{pos: ps.at(line), Fn: name, Args: args}, nil
	case "[":
		ps.next()
		idx, err := ps.expr()
		if err != nil {
			return nil, err
		}
		if err := ps.expect("]"); err != nil {
			return nil, err
		}
		op := ps.next().text
		val, err := ps.expr()
		if err != nil {
			return nil, err
		}
		st := &AssignIdxStmt{pos: ps.at(line), Name: name, Idx: idx, Val: val}
		switch op {
		case "=":
		case "+=", "*=":
			st.Reduction = true
			st.Val = &BinExpr{Op: redOp(op), L: &IndexExpr{Name: name, Idx: idx}, R: val}
		case "-=":
			st.Val = &BinExpr{Op: OpSub, L: &IndexExpr{Name: name, Idx: idx}, R: val}
		default:
			return nil, ps.errf("expected assignment operator, found %q", op)
		}
		return st, nil
	case "=", "+=", "*=", "-=":
		op := ps.next().text
		val, err := ps.expr()
		if err != nil {
			return nil, err
		}
		st := &AssignStmt{pos: ps.at(line), Name: name, Val: val}
		switch op {
		case "=":
		case "+=", "*=":
			st.Reduction = true
			st.Val = &BinExpr{Op: redOp(op), L: &VarExpr{Name: name}, R: val}
		case "-=":
			st.Val = &BinExpr{Op: OpSub, L: &VarExpr{Name: name}, R: val}
		}
		return st, nil
	}
	return nil, ps.errf("expected assignment or call after %q", name)
}

func redOp(op string) BinOp {
	if op == "*=" {
		return OpMul
	}
	return OpAdd
}

// loopTail parses the optional `omp` marker and quoted loop name.
func (ps *parser) loopTail() (omp bool, name string) {
	for {
		switch {
		case ps.cur().text == "omp":
			ps.next()
			omp = true
		case ps.cur().kind == tString:
			name = ps.next().text
		default:
			return omp, name
		}
	}
}

func (ps *parser) forStmt() (Stmt, error) {
	line := ps.next().line // for
	if ps.cur().kind != tIdent {
		return nil, ps.errf("loop variable expected")
	}
	v := ps.next().text
	ps.p.Tab.Var(v)
	if err := ps.expect("="); err != nil {
		return nil, err
	}
	from, err := ps.expr()
	if err != nil {
		return nil, err
	}
	if err := ps.expect(";"); err != nil {
		return nil, err
	}
	if ps.cur().text != v {
		return nil, ps.errf("for condition must test the loop variable %q", v)
	}
	ps.next()
	if err := ps.expect("<"); err != nil {
		return nil, err
	}
	to, err := ps.expr()
	if err != nil {
		return nil, err
	}
	if err := ps.expect(";"); err != nil {
		return nil, err
	}
	if ps.cur().text != v {
		return nil, ps.errf("for step must update the loop variable %q", v)
	}
	ps.next()
	if err := ps.expect("+="); err != nil {
		return nil, err
	}
	step, err := ps.expr()
	if err != nil {
		return nil, err
	}
	omp, lname := ps.loopTail()

	id := ps.p.Meta.AddLoop(prog.Loop{Name: lname, Begin: loc.Pack(ps.p.FileID, line), OMP: omp})
	outer := ps.ctx
	ps.ctx = ps.p.Meta.PushCtx(outer, id)
	body, err := ps.block()
	endLine := ps.toks[ps.pos-1].line // the closing brace
	ps.ctx = outer
	if err != nil {
		return nil, err
	}
	end := loc.Pack(ps.p.FileID, endLine)
	ps.p.Meta.SetLoopEnd(id, end)
	return &ForStmt{
		pos: pos{Line: loc.Pack(ps.p.FileID, line), Ctx: outer},
		Var: v, From: from, To: to, Step: step,
		Body: body, Loop: id, BodyCtx: ps.p.Meta.PushCtx(outer, id), EndLine: end,
	}, nil
}

func (ps *parser) whileStmt() (Stmt, error) {
	line := ps.next().line // while
	cond, err := ps.expr()
	if err != nil {
		return nil, err
	}
	omp, lname := ps.loopTail()
	id := ps.p.Meta.AddLoop(prog.Loop{Name: lname, Begin: loc.Pack(ps.p.FileID, line), OMP: omp})
	outer := ps.ctx
	ps.ctx = ps.p.Meta.PushCtx(outer, id)
	body, err := ps.block()
	endLine := ps.toks[ps.pos-1].line
	ps.ctx = outer
	if err != nil {
		return nil, err
	}
	end := loc.Pack(ps.p.FileID, endLine)
	ps.p.Meta.SetLoopEnd(id, end)
	return &WhileStmt{
		pos:  pos{Line: loc.Pack(ps.p.FileID, line), Ctx: outer},
		Cond: cond, Body: body, Loop: id,
		BodyCtx: ps.p.Meta.PushCtx(outer, id), EndLine: end,
	}, nil
}

func (ps *parser) ifStmt() (Stmt, error) {
	line := ps.next().line // if
	cond, err := ps.expr()
	if err != nil {
		return nil, err
	}
	then, err := ps.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{pos: ps.at(line), Cond: cond, Then: then}
	if ps.cur().text == "else" {
		ps.next()
		if st.Else, err = ps.block(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (ps *parser) spawnStmt() (Stmt, error) {
	line := ps.next().line // spawn
	if ps.cur().kind != tNumber {
		return nil, ps.errf("spawn needs a literal thread count")
	}
	n, err := strconv.Atoi(ps.next().text)
	if err != nil || n <= 0 {
		return nil, ps.errf("bad thread count")
	}
	body, err := ps.block()
	if err != nil {
		return nil, err
	}
	return &SpawnStmt{pos: ps.at(line), Threads: n, Body: body}, nil
}

func (ps *parser) lockStmt() (Stmt, error) {
	line := ps.next().line // lock
	if ps.cur().kind != tIdent {
		return nil, ps.errf("lock needs a mutex name")
	}
	mu := ps.next().text
	body, err := ps.block()
	if err != nil {
		return nil, err
	}
	return &LockStmt{pos: ps.at(line), Mutex: mu, Body: body}, nil
}

func (ps *parser) callArgs() ([]Expr, error) {
	if err := ps.expect("("); err != nil {
		return nil, err
	}
	var args []Expr
	for ps.cur().text != ")" {
		a, err := ps.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if ps.cur().text == "," {
			ps.next()
		}
	}
	ps.next() // )
	return args, nil
}

// --- expressions, precedence climbing ------------------------------------

// binary operator precedence, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

var opByText = map[string]BinOp{
	"||": OpOr, "&&": OpAnd, "|": OpBOr, "^": OpXor, "&": OpBAnd,
	"==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	"<<": OpShl, ">>": OpShr, "+": OpAdd, "-": OpSub,
	"*": OpMul, "/": OpDiv, "%": OpMod,
}

func (ps *parser) expr() (Expr, error) { return ps.binExpr(0) }

func (ps *parser) binExpr(level int) (Expr, error) {
	if level >= len(precLevels) {
		return ps.unary()
	}
	l, err := ps.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, opText := range precLevels[level] {
			if ps.cur().kind == tPunct && ps.cur().text == opText {
				ps.next()
				r, err := ps.binExpr(level + 1)
				if err != nil {
					return nil, err
				}
				l = &BinExpr{Op: opByText[opText], L: l, R: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (ps *parser) unary() (Expr, error) {
	switch ps.cur().text {
	case "-":
		ps.next()
		x, err := ps.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: OpNeg, X: x}, nil
	case "!":
		ps.next()
		x, err := ps.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: OpNot, X: x}, nil
	}
	return ps.primary()
}

func (ps *parser) primary() (Expr, error) {
	t := ps.cur()
	switch {
	case t.text == "(":
		ps.next()
		e, err := ps.expr()
		if err != nil {
			return nil, err
		}
		if err := ps.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tNumber:
		ps.next()
		var v float64
		if strings.HasPrefix(t.text, "0x") {
			u, err := strconv.ParseUint(t.text[2:], 16, 64)
			if err != nil {
				return nil, ps.errf("bad hex literal %q", t.text)
			}
			v = float64(u)
		} else {
			var err error
			if v, err = strconv.ParseFloat(t.text, 64); err != nil {
				return nil, ps.errf("bad number %q", t.text)
			}
		}
		return &ConstExpr{V: v}, nil
	case t.text == "tid":
		ps.next()
		return &TidExpr{}, nil
	case t.text == "len":
		ps.next()
		if err := ps.expect("("); err != nil {
			return nil, err
		}
		if ps.cur().kind != tIdent {
			return nil, ps.errf("len needs an array name")
		}
		name := ps.next().text
		if err := ps.expect(")"); err != nil {
			return nil, err
		}
		return &LenExpr{Name: name}, nil
	case t.kind == tIdent:
		name := ps.next().text
		switch ps.cur().text {
		case "(":
			args, err := ps.callArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Fn: name, Args: args}, nil
		case "[":
			ps.next()
			idx, err := ps.expr()
			if err != nil {
				return nil, err
			}
			if err := ps.expect("]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: name, Idx: idx}, nil
		}
		return &VarExpr{Name: name}, nil
	}
	return nil, ps.errf("unexpected token %q in expression", t.text)
}
