package minilang

import (
	"testing"
)

func TestLineAssignment(t *testing.T) {
	p := New("lines")
	p.MainFunc(func(b *Block) {
		b.Decl("x", Ci(1))                                          // line 1
		b.Assign("x", Ci(2))                                        // line 2
		b.For("i", Ci(0), Ci(3), Ci(1), LoopOpt{}, func(l *Block) { // line 3
			l.Assign("x", V("i")) // line 4
		}) // END -> line 5
		b.Free("x") // line 6
	})
	body := p.Funcs["main"].Body
	wantLines := []int{1, 2, 3, 6}
	for i, st := range body {
		l, _ := st.Pos()
		if l.Line() != wantLines[i] {
			t.Errorf("stmt %d at line %d, want %d", i, l.Line(), wantLines[i])
		}
		if l.File() != p.FileID {
			t.Errorf("stmt %d in file %d, want %d", i, l.File(), p.FileID)
		}
	}
	fs := body[2].(*ForStmt)
	inner, _ := fs.Body[0].Pos()
	if inner.Line() != 4 {
		t.Errorf("loop body at line %d, want 4", inner.Line())
	}
	if fs.EndLine.Line() != 5 {
		t.Errorf("loop END at line %d, want 5", fs.EndLine.Line())
	}
}

func TestLoopRegistration(t *testing.T) {
	p := New("loops")
	p.MainFunc(func(b *Block) {
		b.For("i", Ci(0), Ci(2), Ci(1), LoopOpt{Name: "outer", OMP: true}, func(o *Block) {
			o.For("j", Ci(0), Ci(2), Ci(1), LoopOpt{Name: "inner"}, func(in *Block) {
				in.Decl("x", Ci(1))
			})
		})
		b.While(Lt(Ci(0), Ci(1)), LoopOpt{Name: "w"}, func(w *Block) {
			w.Ret(nil)
		})
	})
	loops := p.Meta.Loops()
	if len(loops) != 3 {
		t.Fatalf("loops registered = %d, want 3", len(loops))
	}
	if loops[0].Name != "outer" || !loops[0].OMP {
		t.Errorf("loop 0 = %+v", loops[0])
	}
	if loops[1].Name != "inner" || loops[1].OMP {
		t.Errorf("loop 1 = %+v", loops[1])
	}
	if loops[0].Begin >= loops[0].End {
		t.Error("outer loop begin/end not ordered")
	}
	// Context nesting: inner body context's stack is [outer, inner].
	fs := p.Funcs["main"].Body[0].(*ForStmt)
	innerFs := fs.Body[0].(*ForStmt)
	stack := p.Meta.Stack(innerFs.BodyCtx)
	if len(stack) != 2 || stack[0] != loops[0].ID || stack[1] != loops[1].ID {
		t.Errorf("inner context stack = %v", stack)
	}
}

func TestStatementContexts(t *testing.T) {
	p := New("ctx")
	p.MainFunc(func(b *Block) {
		b.Decl("x", Ci(0)) // ctx 0
		b.For("i", Ci(0), Ci(1), Ci(1), LoopOpt{}, func(l *Block) {
			l.Assign("x", Ci(1)) // loop body ctx
			l.If(Gt(V("x"), Ci(0)), func(tb *Block) {
				tb.Assign("x", Ci(2)) // still loop body ctx
			}, nil)
		})
	})
	body := p.Funcs["main"].Body
	if _, ctx := body[0].Pos(); ctx != 0 {
		t.Errorf("top-level stmt ctx = %d, want 0", ctx)
	}
	fs := body[1].(*ForStmt)
	if _, ctx := fs.Body[0].Pos(); ctx != fs.BodyCtx {
		t.Error("loop body stmt not in body context")
	}
	ifs := fs.Body[1].(*IfStmt)
	if _, ctx := ifs.Then[0].Pos(); ctx != fs.BodyCtx {
		t.Error("if-branch must inherit the loop context")
	}
}

func TestDuplicateFunctionPanics(t *testing.T) {
	p := New("dup")
	p.Func("f", nil, func(b *Block) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate function definition did not panic")
		}
	}()
	p.Func("f", nil, func(b *Block) {})
}

func TestReduceBuildsMarkedAssign(t *testing.T) {
	p := New("red")
	p.MainFunc(func(b *Block) {
		b.Decl("s", Ci(0))
		b.Reduce("s", OpAdd, Ci(1))
	})
	as := p.Funcs["main"].Body[1].(*AssignStmt)
	if !as.Reduction {
		t.Fatal("Reduce must set the Reduction flag")
	}
	be := as.Val.(*BinExpr)
	if be.Op != OpAdd {
		t.Errorf("op = %d", be.Op)
	}
	if ve, ok := be.L.(*VarExpr); !ok || ve.Name != "s" {
		t.Error("reduction LHS must read the target variable")
	}
}

func TestSetReduceBuildsMarkedAssignIdx(t *testing.T) {
	p := New("sred")
	p.MainFunc(func(b *Block) {
		b.DeclArr("a", Ci(4))
		b.SetReduce("a", Ci(2), OpAdd, Ci(1))
	})
	as := p.Funcs["main"].Body[1].(*AssignIdxStmt)
	if !as.Reduction {
		t.Fatal("SetReduce must set the Reduction flag")
	}
	be := as.Val.(*BinExpr)
	if ie, ok := be.L.(*IndexExpr); !ok || ie.Name != "a" {
		t.Error("array reduction LHS must read the target element")
	}
}

func TestExpressionHelpers(t *testing.T) {
	// Add/Mul fold extra operands left-associatively.
	e := Add(Ci(1), Ci(2), Ci(3), Ci(4)).(*BinExpr)
	if e.Op != OpAdd {
		t.Fatal("outer op")
	}
	if _, ok := e.L.(*BinExpr); !ok {
		t.Error("Add should fold left")
	}
	if m := Mul(Ci(1), Ci(2), Ci(3)).(*BinExpr); m.Op != OpMul {
		t.Error("Mul op")
	}
	ops := map[BinOp]Expr{
		OpSub: Sub(Ci(1), Ci(2)), OpDiv: Div(Ci(1), Ci(2)), OpIDiv: IDiv(Ci(1), Ci(2)),
		OpMod: Mod(Ci(1), Ci(2)), OpBAnd: BAnd(Ci(1), Ci(2)), OpBOr: BOr(Ci(1), Ci(2)),
		OpXor: Xor(Ci(1), Ci(2)), OpShl: Shl(Ci(1), Ci(2)), OpShr: Shr(Ci(1), Ci(2)),
		OpEq: Eq(Ci(1), Ci(2)), OpNe: Ne(Ci(1), Ci(2)), OpLt: Lt(Ci(1), Ci(2)),
		OpLe: Le(Ci(1), Ci(2)), OpGt: Gt(Ci(1), Ci(2)), OpGe: Ge(Ci(1), Ci(2)),
		OpAnd: And(Ci(1), Ci(2)), OpOr: Or(Ci(1), Ci(2)),
	}
	for op, ex := range ops {
		if be := ex.(*BinExpr); be.Op != op {
			t.Errorf("helper for op %d built op %d", op, be.Op)
		}
	}
	if ue := Neg(Ci(1)).(*UnExpr); ue.Op != OpNeg {
		t.Error("Neg")
	}
	if ue := Not(Ci(1)).(*UnExpr); ue.Op != OpNot {
		t.Error("Not")
	}
	if ce := CallE("sqrt", Ci(4)).(*CallExpr); ce.Fn != "sqrt" || len(ce.Args) != 1 {
		t.Error("CallE")
	}
	if _, ok := Tid().(*TidExpr); !ok {
		t.Error("Tid")
	}
	if le := LenOf("a").(*LenExpr); le.Name != "a" {
		t.Error("LenOf")
	}
}

func TestVarsInterned(t *testing.T) {
	p := New("intern")
	p.MainFunc(func(b *Block) {
		b.Decl("alpha", Ci(0))
		b.DeclArr("beta", Ci(4))
		b.For("gamma", Ci(0), Ci(1), Ci(1), LoopOpt{}, func(l *Block) {})
	})
	for _, name := range []string{"alpha", "beta", "gamma"} {
		id := p.Tab.Var(name)
		if id == 0 {
			t.Errorf("%s not interned", name)
		}
		if p.Tab.VarName(id) != name {
			t.Errorf("round trip failed for %s", name)
		}
	}
	if p.Tab.FileName(p.FileID) != "intern" {
		t.Error("program file not interned")
	}
}

func TestSpawnLockBarrierShapes(t *testing.T) {
	p := New("mt")
	p.MainFunc(func(b *Block) {
		b.Decl("x", Ci(0))
		b.Spawn(4, func(s *Block) {
			s.Lock("m", func(cr *Block) {
				cr.Reduce("x", OpAdd, Ci(1))
			})
			s.Barrier()
		})
	})
	sp := p.Funcs["main"].Body[1].(*SpawnStmt)
	if sp.Threads != 4 || len(sp.Body) != 2 {
		t.Fatalf("spawn = %+v", sp)
	}
	lk := sp.Body[0].(*LockStmt)
	if lk.Mutex != "m" || len(lk.Body) != 1 {
		t.Errorf("lock = %+v", lk)
	}
	if _, ok := sp.Body[1].(*BarrierStmt); !ok {
		t.Error("barrier missing")
	}
}

func TestMultiFilePrograms(t *testing.T) {
	p := New("main.c")
	p.Func("helper", nil, func(b *Block) {
		b.Ret(Ci(1))
	})
	p.SetFile("util.c")
	p.Func("util", nil, func(b *Block) {
		b.Decl("u", Ci(2)) // util.c line 1
	})
	p.SetFile("main.c")
	p.MainFunc(func(b *Block) {
		b.Decl("x", CallE("helper")) // main.c, continues its counter
		b.Call("util")
	})

	mainID := p.Tab.File("main.c")
	utilID := p.Tab.File("util.c")
	if mainID == utilID {
		t.Fatal("files not distinct")
	}
	// helper's body is main.c line 1; util's body is util.c line 1.
	hLine, _ := p.Funcs["helper"].Body[0].Pos()
	uLine, _ := p.Funcs["util"].Body[0].Pos()
	if hLine.File() != mainID || hLine.Line() != 1 {
		t.Errorf("helper at %v", hLine)
	}
	if uLine.File() != utilID || uLine.Line() != 1 {
		t.Errorf("util at %v", uLine)
	}
	// main continues main.c's counter (line 2 after helper's ret at 1).
	mLine, _ := p.Funcs["main"].Body[0].Pos()
	if mLine.File() != mainID || mLine.Line() != 2 {
		t.Errorf("main resumes at %v, want main.c:2", mLine)
	}
}
