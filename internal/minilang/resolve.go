package minilang

// Static scope/slot resolution for compiled execution.
//
// The interpreter resolves variable names at every access by walking a chain
// of map-based frames. A compiled executor wants flat per-frame slot arrays
// instead, so this pass enumerates, per lexical frame, every name the frame
// can ever bind and assigns each a stable slot index. minilang has exactly
// three frame kinds — the root (main) frame, one frame per function call,
// and one frame per Spawn thread; blocks (loop, if, lock bodies) do not
// introduce frames — so each statement's frame chain is statically known.
//
// A slot existing does not mean the name is bound: bindings still appear
// when the declaration executes (and disappear on Free), which is why a
// compiled reference carries the ordered list of chain slots that may hold
// the name, not a single coordinate.

// Scope is one lexical frame's slot layout. Slots are assigned in
// first-appearance order; for function scopes, parameters occupy the first
// len(Params) slots in declaration order.
type Scope struct {
	// Names maps slot index back to the variable name.
	Names []string
	// Slot maps a name to its slot index.
	Slot map[string]int
}

func newScope() *Scope { return &Scope{Slot: make(map[string]int)} }

func (s *Scope) add(name string) {
	if _, ok := s.Slot[name]; !ok {
		s.Slot[name] = len(s.Names)
		s.Names = append(s.Names, name)
	}
}

// Resolved is the program's complete slot layout.
type Resolved struct {
	// Root is the entry main frame's scope.
	Root *Scope
	// Funcs holds one scope per function (params + locals). "main" appears
	// here too, covering the corner case of main invoked as an ordinary
	// function (which gets a fresh frame, not the root frame).
	Funcs map[string]*Scope
	// Spawns holds one scope per Spawn statement body.
	Spawns map[*SpawnStmt]*Scope
}

// Resolve computes the slot layout of every frame in p.
func Resolve(p *Program) *Resolved {
	r := &Resolved{
		Funcs:  make(map[string]*Scope),
		Spawns: make(map[*SpawnStmt]*Scope),
	}
	for name, f := range p.Funcs {
		s := newScope()
		for _, prm := range f.Params {
			s.add(prm)
		}
		r.collect(s, f.Body)
		r.Funcs[name] = s
	}
	if main := p.Funcs["main"]; main != nil {
		s := newScope()
		r.collect(s, main.Body)
		r.Root = s
	}
	return r
}

// collect adds every name the statement list can bind in the frame owning
// scope s, descending into nested blocks; Spawn bodies open their own scope.
func (r *Resolved) collect(s *Scope, stmts []Stmt) {
	for _, st := range stmts {
		switch st := st.(type) {
		case *DeclStmt:
			s.add(st.Name)
		case *DeclArrStmt:
			s.add(st.Name)
		case *ForStmt:
			s.add(st.Var)
			r.collect(s, st.Body)
		case *WhileStmt:
			r.collect(s, st.Body)
		case *IfStmt:
			r.collect(s, st.Then)
			r.collect(s, st.Else)
		case *LockStmt:
			r.collect(s, st.Body)
		case *SpawnStmt:
			ns := newScope()
			r.collect(ns, st.Body)
			r.Spawns[st] = ns
		}
	}
}
