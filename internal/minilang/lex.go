package minilang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Token kinds for the minilang source reader.
type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tPunct // single or double punctuation: ( ) { } [ ] , ; = += *= < <= etc.
	tKeyword
)

var keywords = map[string]bool{
	"func": true, "var": true, "arr": true, "for": true, "while": true,
	"if": true, "else": true, "spawn": true, "lock": true, "barrier": true,
	"free": true, "return": true, "omp": true, "tid": true, "len": true,
	"file": true,
}

type token struct {
	kind tokKind
	text string
	line int
}

// lexer splits minilang source into tokens, tracking physical line numbers
// so the parsed program's dependences report real source locations.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			word := l.src[start:l.pos]
			kind := tIdent
			if keywords[word] {
				kind = tKeyword
			}
			l.emit(kind, word)
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			start := l.pos
			for l.pos < len(l.src) && (isNumPart(l.src[l.pos])) {
				l.pos++
			}
			text := l.src[start:l.pos]
			if _, err := strconv.ParseFloat(strings.TrimPrefix(text, "0x"), 64); err != nil {
				if _, err2 := strconv.ParseUint(strings.TrimPrefix(text, "0x"), 16, 64); err2 != nil {
					return nil, fmt.Errorf("line %d: bad number %q", l.line, text)
				}
			}
			l.emit(tNumber, text)
		case c == '"':
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] != '"' && l.src[l.pos] != '\n' {
				l.pos++
			}
			if l.pos >= len(l.src) || l.src[l.pos] != '"' {
				return nil, fmt.Errorf("line %d: unterminated string", l.line)
			}
			l.emit(tString, l.src[start:l.pos])
			l.pos++
		default:
			if op := l.twoChar(); op != "" {
				l.emit(tPunct, op)
				l.pos += 2
				continue
			}
			if strings.ContainsRune("(){}[],;=<>+-*/%&|^!", rune(c)) {
				l.emit(tPunct, string(c))
				l.pos++
				continue
			}
			return nil, fmt.Errorf("line %d: unexpected character %q", l.line, c)
		}
	}
	l.emit(tEOF, "")
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, line: l.line})
}

// twoChar recognizes two-character operators at the current position.
func (l *lexer) twoChar() string {
	if l.pos+1 >= len(l.src) {
		return ""
	}
	op := l.src[l.pos : l.pos+2]
	switch op {
	case "+=", "-=", "*=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "//":
		return op
	}
	return ""
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isNumPart(c byte) bool {
	return c >= '0' && c <= '9' || c == '.' || c == 'x' || c == 'e' || c == 'E' ||
		c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
