package minilang

import (
	"fmt"

	"ddprof/internal/loc"
	"ddprof/internal/prog"
)

// New starts a new program. Statements added through the returned builder
// receive consecutive source lines in the program's initial file (named
// after the program, file ID 1); SetFile switches to further files, like a
// multi-file C program.
func New(name string) *Program {
	p := &Program{
		Name:     name,
		Tab:      loc.NewTable(),
		Meta:     prog.NewMeta(),
		Funcs:    make(map[string]*Func),
		lines:    make(map[loc.FileID]int),
		nextLine: 0,
	}
	p.FileID = p.Tab.File(name)
	return p
}

// SetFile switches subsequently built statements to the named source file,
// interning it on first use. Each file keeps its own line counter, so
// profiled locations read like the paper's "4:58" (file 4, line 58).
func (p *Program) SetFile(name string) {
	p.lines[p.FileID] = p.nextLine
	p.FileID = p.Tab.File(name)
	p.nextLine = p.lines[p.FileID]
}

// line hands out the next source line in the current file.
func (p *Program) line() loc.SourceLoc {
	p.nextLine++
	return loc.Pack(p.FileID, p.nextLine)
}

// Block builds a statement list. Its methods append one statement each and
// assign it the next source line.
type Block struct {
	p     *Program
	stmts []Stmt
	ctx   uint32
}

// Func defines a function; build its body inside fn. Defining "main" sets
// the program entry point.
func (p *Program) Func(name string, params []string, fn func(*Block)) {
	if _, dup := p.Funcs[name]; dup {
		panic(fmt.Sprintf("minilang: function %q defined twice", name))
	}
	for _, prm := range params {
		p.Tab.Var(prm)
	}
	b := &Block{p: p}
	fn(b)
	p.Funcs[name] = &Func{Name: name, Params: params, Body: b.stmts}
}

// MainFunc defines the entry point.
func (p *Program) MainFunc(fn func(*Block)) { p.Func("main", nil, fn) }

func (b *Block) add(s Stmt) { b.stmts = append(b.stmts, s) }

// SetFile switches the program's current source file for subsequently built
// statements (see Program.SetFile).
func (b *Block) SetFile(name string) { b.p.SetFile(name) }

func (b *Block) at() pos { return pos{Line: b.p.line(), Ctx: b.ctx} }

// Decl declares a scalar with an initial value.
func (b *Block) Decl(name string, init Expr) {
	b.p.Tab.Var(name)
	b.add(&DeclStmt{pos: b.at(), Name: name, Init: init})
}

// DeclArr declares (allocates) an array of the given dynamic size.
func (b *Block) DeclArr(name string, size Expr) {
	b.p.Tab.Var(name)
	b.add(&DeclArrStmt{pos: b.at(), Name: name, Size: size})
}

// Assign stores val into a scalar.
func (b *Block) Assign(name string, val Expr) {
	b.add(&AssignStmt{pos: b.at(), Name: name, Val: val})
}

// Reduce appends the reduction statement name = name ⊕ val, marked so the
// profiler can recognize reduction dependences.
func (b *Block) Reduce(name string, op BinOp, val Expr) {
	b.add(&AssignStmt{pos: b.at(), Name: name,
		Val: &BinExpr{Op: op, L: &VarExpr{Name: name}, R: val}, Reduction: true})
}

// Set stores val into arr[idx].
func (b *Block) Set(name string, idx, val Expr) {
	b.add(&AssignIdxStmt{pos: b.at(), Name: name, Idx: idx, Val: val})
}

// SetReduce appends arr[idx] = arr[idx] ⊕ val as a reduction statement.
// The index expression is shared; it is evaluated twice (read and write
// side), like a C compiler would re-emit the address computation.
func (b *Block) SetReduce(name string, idx Expr, op BinOp, val Expr) {
	b.add(&AssignIdxStmt{pos: b.at(), Name: name, Idx: idx,
		Val: &BinExpr{Op: op, L: &IndexExpr{Name: name, Idx: idx}, R: val}, Reduction: true})
}

// LoopOpt carries per-loop metadata.
type LoopOpt struct {
	// Name labels the loop in diagnostics and Table II listings.
	Name string
	// OMP records that the hand-parallelized version of this benchmark
	// annotates the loop as a parallel worksharing loop (Table II ground
	// truth).
	OMP bool
}

// For builds a counted loop: for v = from; v < to; v += step { body }.
func (b *Block) For(v string, from, to, step Expr, opt LoopOpt, fn func(*Block)) {
	b.p.Tab.Var(v)
	at := b.at()
	id := b.p.Meta.AddLoop(prog.Loop{Name: opt.Name, Begin: at.Line, OMP: opt.OMP})
	inner := &Block{p: b.p, ctx: b.p.Meta.PushCtx(b.ctx, id)}
	fn(inner)
	end := b.p.line()
	b.p.Meta.SetLoopEnd(id, end)
	b.add(&ForStmt{pos: at, Var: v, From: from, To: to, Step: step,
		Body: inner.stmts, Loop: id, BodyCtx: inner.ctx, EndLine: end})
}

// While builds a condition-controlled loop.
func (b *Block) While(cond Expr, opt LoopOpt, fn func(*Block)) {
	at := b.at()
	id := b.p.Meta.AddLoop(prog.Loop{Name: opt.Name, Begin: at.Line, OMP: opt.OMP})
	inner := &Block{p: b.p, ctx: b.p.Meta.PushCtx(b.ctx, id)}
	fn(inner)
	end := b.p.line()
	b.p.Meta.SetLoopEnd(id, end)
	b.add(&WhileStmt{pos: at, Cond: cond, Body: inner.stmts, Loop: id,
		BodyCtx: inner.ctx, EndLine: end})
}

// If builds a branch; elseFn may be nil.
func (b *Block) If(cond Expr, thenFn func(*Block), elseFn func(*Block)) {
	at := b.at()
	tb := &Block{p: b.p, ctx: b.ctx}
	thenFn(tb)
	var eb *Block
	if elseFn != nil {
		eb = &Block{p: b.p, ctx: b.ctx}
		elseFn(eb)
	}
	st := &IfStmt{pos: at, Cond: cond, Then: tb.stmts}
	if eb != nil {
		st.Else = eb.stmts
	}
	b.add(st)
}

// Call invokes a user function for effect.
func (b *Block) Call(fn string, args ...Expr) {
	b.add(&CallStmt{pos: b.at(), Fn: fn, Args: args})
}

// Ret returns from the current function; val may be nil.
func (b *Block) Ret(val Expr) {
	b.add(&ReturnStmt{pos: b.at(), Val: val})
}

// Free deallocates a scalar or array.
func (b *Block) Free(name string) {
	b.add(&FreeStmt{pos: b.at(), Name: name})
}

// Spawn runs the body on n concurrent target threads.
func (b *Block) Spawn(n int, fn func(*Block)) {
	at := b.at()
	inner := &Block{p: b.p, ctx: b.ctx}
	fn(inner)
	b.add(&SpawnStmt{pos: at, Threads: n, Body: inner.stmts})
}

// Lock executes the body holding the named mutex.
func (b *Block) Lock(mutex string, fn func(*Block)) {
	at := b.at()
	inner := &Block{p: b.p, ctx: b.ctx}
	fn(inner)
	b.add(&LockStmt{pos: at, Mutex: mutex, Body: inner.stmts})
}

// Barrier synchronizes all threads of the enclosing Spawn.
func (b *Block) Barrier() { b.add(&BarrierStmt{pos: b.at()}) }

// Expression helpers. These are package-level so workload code reads close
// to the pseudo-source it models.

// C is a float constant.
func C(v float64) Expr { return &ConstExpr{V: v} }

// Ci is an integer constant.
func Ci(v int) Expr { return &ConstExpr{V: float64(v)} }

// V reads a scalar variable.
func V(name string) Expr { return &VarExpr{Name: name} }

// Idx reads arr[idx].
func Idx(name string, idx Expr) Expr { return &IndexExpr{Name: name, Idx: idx} }

// LenOf yields an array's length.
func LenOf(name string) Expr { return &LenExpr{Name: name} }

// Tid yields the executing thread ID.
func Tid() Expr { return &TidExpr{} }

func bin(op BinOp, l, r Expr) Expr { return &BinExpr{Op: op, L: l, R: r} }

// Add returns l + r; further operands fold left.
func Add(l, r Expr, more ...Expr) Expr {
	e := bin(OpAdd, l, r)
	for _, m := range more {
		e = bin(OpAdd, e, m)
	}
	return e
}

// Sub returns l - r.
func Sub(l, r Expr) Expr { return bin(OpSub, l, r) }

// Mul returns l * r; further operands fold left.
func Mul(l, r Expr, more ...Expr) Expr {
	e := bin(OpMul, l, r)
	for _, m := range more {
		e = bin(OpMul, e, m)
	}
	return e
}

// Div returns l / r (float).
func Div(l, r Expr) Expr { return bin(OpDiv, l, r) }

// IDiv returns trunc(l / r).
func IDiv(l, r Expr) Expr { return bin(OpIDiv, l, r) }

// Mod returns l mod r on integers.
func Mod(l, r Expr) Expr { return bin(OpMod, l, r) }

// BAnd/BOr/Xor/Shl/Shr are integer bitwise operators.
func BAnd(l, r Expr) Expr { return bin(OpBAnd, l, r) }
func BOr(l, r Expr) Expr  { return bin(OpBOr, l, r) }
func Xor(l, r Expr) Expr  { return bin(OpXor, l, r) }
func Shl(l, r Expr) Expr  { return bin(OpShl, l, r) }
func Shr(l, r Expr) Expr  { return bin(OpShr, l, r) }

// Comparisons yield 1 or 0.
func Eq(l, r Expr) Expr { return bin(OpEq, l, r) }
func Ne(l, r Expr) Expr { return bin(OpNe, l, r) }
func Lt(l, r Expr) Expr { return bin(OpLt, l, r) }
func Le(l, r Expr) Expr { return bin(OpLe, l, r) }
func Gt(l, r Expr) Expr { return bin(OpGt, l, r) }
func Ge(l, r Expr) Expr { return bin(OpGe, l, r) }

// And/Or are short-circuit logical operators.
func And(l, r Expr) Expr { return bin(OpAnd, l, r) }
func Or(l, r Expr) Expr  { return bin(OpOr, l, r) }

// Neg returns -x; Not returns !x.
func Neg(x Expr) Expr { return &UnExpr{Op: OpNeg, X: x} }
func Not(x Expr) Expr { return &UnExpr{Op: OpNot, X: x} }

// CallE calls a builtin or user function as an expression.
func CallE(fn string, args ...Expr) Expr { return &CallExpr{Fn: fn, Args: args} }
