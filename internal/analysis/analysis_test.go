package analysis

import (
	"strings"
	"testing"

	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/interp"
	"ddprof/internal/loc"
	. "ddprof/internal/minilang"
)

// profileProgram runs p under a perfect-signature serial profiler.
func profileProgram(t *testing.T, p *Program) (*interp.RunInfo, *core.Result) {
	t.Helper()
	prof := core.NewSerial(core.Config{
		Backend: "perfect",
		Meta:    p.Meta,
	})
	info, err := interp.Run(p, prof, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return info, prof.Flush()
}

// TestDiscoverParallelismVerdicts builds a program with one loop of each
// kind and checks the classification.
func TestDiscoverParallelismVerdicts(t *testing.T) {
	p := New("verdicts")
	p.MainFunc(func(b *Block) {
		b.Decl("n", Ci(50))
		b.DeclArr("a", V("n"))
		b.DeclArr("bb", V("n"))
		b.Decl("sum", Ci(0))
		// Clean parallel loop (OMP).
		b.For("i", Ci(0), V("n"), Ci(1), LoopOpt{Name: "clean", OMP: true}, func(l *Block) {
			l.Set("a", V("i"), Mul(V("i"), Ci(2)))
		})
		// Reduction loop (OMP): carried RAW, all reduction instances.
		b.For("i", Ci(0), V("n"), Ci(1), LoopOpt{Name: "reduction", OMP: true}, func(l *Block) {
			l.Reduce("sum", OpAdd, Idx("a", V("i")))
		})
		// Genuinely sequential recurrence (OMP-annotated here to verify it
		// is NOT identified).
		b.For("i", Ci(1), V("n"), Ci(1), LoopOpt{Name: "recurrence", OMP: true}, func(l *Block) {
			l.Set("bb", V("i"), Add(Idx("bb", Sub(V("i"), Ci(1))), Idx("a", V("i"))))
		})
		// Never-executed loop: must not appear in reports.
		b.If(Lt(V("n"), Ci(0)), func(tb *Block) {
			tb.For("i", Ci(0), Ci(5), Ci(1), LoopOpt{Name: "dead", OMP: true}, func(l *Block) {
				l.Set("a", V("i"), Ci(0))
			})
		}, nil)
	})
	info, res := profileProgram(t, p)
	reports := DiscoverParallelism(p.Meta, res, info.LoopIters)

	byName := map[string]LoopReport{}
	for _, r := range reports {
		byName[r.Loop.Name] = r
	}
	if _, ok := byName["dead"]; ok {
		t.Error("never-executed loop reported")
	}
	if r := byName["clean"]; !r.Parallelizable || r.CarriedRAW != 0 {
		t.Errorf("clean loop misclassified: %+v", r)
	}
	if r := byName["reduction"]; r.Parallelizable || !r.Reduction {
		t.Errorf("reduction loop misclassified: %+v", r)
	}
	if r := byName["recurrence"]; r.Parallelizable || r.Reduction {
		t.Errorf("recurrence misclassified: %+v", r)
	}
	if r := byName["clean"]; r.Iterations != 50 {
		t.Errorf("clean loop iterations = %d", r.Iterations)
	}

	omp, ident := CountIdentified(reports)
	if omp != 3 || ident != 1 {
		t.Errorf("CountIdentified = (%d,%d), want (3,1)", omp, ident)
	}
	set := IdentifiedSet(reports)
	if !set["clean"] || set["reduction"] || len(set) != 1 {
		t.Errorf("IdentifiedSet = %v", set)
	}
}

func TestCommunicationMatrix(t *testing.T) {
	s := dep.NewSet()
	add := func(ty dep.Type, src, snk int16, count int) {
		k := dep.Key{Type: ty, Sink: loc.Pack(1, 2), SinkThread: snk, Src: loc.Pack(1, 1), SrcThread: src, Var: loc.VarID(int(src)*10 + int(snk))}
		for i := 0; i < count; i++ {
			s.Add(k, false, false, false)
		}
	}
	add(dep.RAW, 0, 1, 5)
	add(dep.RAW, 1, 2, 7)
	add(dep.RAW, 2, 2, 100) // diagonal
	add(dep.WAR, 0, 3, 50)  // not communication
	m := Communication(s, 4)
	if m.M[0][1] != 5 || m.M[1][2] != 7 || m.M[2][2] != 100 {
		t.Errorf("matrix wrong: %+v", m.M)
	}
	if m.M[0][3] != 0 {
		t.Error("WAR counted as communication")
	}
	if m.CrossThread() != 12 {
		t.Errorf("CrossThread = %d, want 12", m.CrossThread())
	}
	hm := m.Heatmap()
	if !strings.Contains(hm, "@") {
		t.Errorf("heatmap missing a saturated cell:\n%s", hm)
	}
	if len(strings.Split(strings.TrimSpace(hm), "\n")) != 6 {
		t.Errorf("heatmap should be header+4 rows+footer:\n%s", hm)
	}
}

func TestCommunicationEndToEnd(t *testing.T) {
	// A pipeline where thread t writes cell t and reads cell t-1: the
	// communication matrix must show the sub-diagonal band.
	p := New("pipe")
	p.MainFunc(func(b *Block) {
		b.Decl("T", Ci(4))
		b.DeclArr("cells", V("T"))
		b.For("round", Ci(0), Ci(50), Ci(1), LoopOpt{Name: "rounds"}, func(rb *Block) {
			rb.Spawn(4, func(s *Block) {
				s.Lock("m", func(cr *Block) {
					cr.Set("cells", Tid(), Add(Idx("cells", Mod(Add(Tid(), Ci(3)), Ci(4))), Ci(1)))
				})
				s.Barrier()
			})
		})
	})
	prof := core.NewMT(core.Config{Workers: 2, Backend: "perfect"})
	if _, err := interp.Run(p, prof, interp.Options{Timestamps: true}); err != nil {
		t.Fatal(err)
	}
	m := Communication(prof.Flush().Deps, 4)
	// Expect substantial t-1 -> t flow.
	for c := 0; c < 4; c++ {
		pth := (c + 3) % 4
		if m.M[pth][c] == 0 {
			t.Errorf("expected communication %d -> %d", pth, c)
		}
	}
}

func TestHeatmapEmpty(t *testing.T) {
	m := Communication(dep.NewSet(), 2)
	if m.CrossThread() != 0 {
		t.Error("empty set has communication")
	}
	if hm := m.Heatmap(); !strings.Contains(hm, "(producer)") {
		t.Error("heatmap footer missing")
	}
}

// TestDoacrossDistance: a lag-k recurrence admits k-way DOACROSS overlap,
// which the report exposes through the minimum carried distance.
func TestDoacrossDistance(t *testing.T) {
	p := New("doacross")
	p.MainFunc(func(b *Block) {
		b.Decl("n", Ci(60))
		b.DeclArr("a", V("n"))
		b.DeclArr("bb", V("n"))
		// a[i] = a[i-4]: distance-4 recurrence -> DOACROSS(4).
		b.For("i", Ci(4), V("n"), Ci(1), LoopOpt{Name: "lag4"}, func(l *Block) {
			l.Set("a", V("i"), Add(Idx("a", Sub(V("i"), Ci(4))), Ci(1)))
		})
		// bb[i] = bb[i-1]: distance-1 -> no headroom.
		b.For("i", Ci(1), V("n"), Ci(1), LoopOpt{Name: "lag1"}, func(l *Block) {
			l.Set("bb", V("i"), Add(Idx("bb", Sub(V("i"), Ci(1))), Ci(1)))
		})
	})
	info, res := profileProgram(t, p)
	reports := DiscoverParallelism(p.Meta, res, info.LoopIters)
	byName := map[string]LoopReport{}
	for _, r := range reports {
		byName[r.Loop.Name] = r
	}
	if r := byName["lag4"]; r.Parallelizable || r.DoacrossDistance != 4 {
		t.Errorf("lag4 = %+v, want DOACROSS distance 4", r)
	}
	if r := byName["lag1"]; r.DoacrossDistance != 1 {
		t.Errorf("lag1 = %+v, want distance 1", r)
	}
}

// TestSectionDeps: loop-to-loop dependence summary (§VI-B's "dependence
// between two code sections"). fill writes a, sum reads it: one
// cross-section ordering constraint; gen and use of b likewise; clear is
// independent of fill.
func TestSectionDeps(t *testing.T) {
	p := New("sections")
	p.MainFunc(func(b *Block) {
		b.Decl("n", Ci(40))
		b.DeclArr("a", V("n"))
		b.DeclArr("c", V("n"))
		b.Decl("sum", Ci(0))
		// Distinct induction variables: reusing one scalar i across loops
		// would itself be a (privatizable) cross-loop dependence.
		b.For("i1", Ci(0), V("n"), Ci(1), LoopOpt{Name: "fill"}, func(l *Block) {
			l.Set("a", V("i1"), Mul(V("i1"), Ci(2)))
		})
		b.For("i2", Ci(0), V("n"), Ci(1), LoopOpt{Name: "clear"}, func(l *Block) {
			l.Set("c", V("i2"), Ci(0))
		})
		b.For("i3", Ci(0), V("n"), Ci(1), LoopOpt{Name: "sum"}, func(l *Block) {
			l.Reduce("sum", OpAdd, Idx("a", V("i3")))
		})
	})
	_, res := profileProgram(t, p)
	sd := Sections(p.Meta, res.Deps)
	if len(sd.Sections) != 4 { // outside + 3 loops
		t.Fatalf("sections = %v", sd.Sections)
	}
	idx := map[string]int{}
	for i, n := range sd.Sections {
		idx[n] = i
	}
	if sd.M[idx["fill"]][idx["sum"]] == 0 {
		t.Errorf("fill -> sum dependence missing:\n%s", sd.String())
	}
	if sd.M[idx["fill"]][idx["clear"]] != 0 || sd.M[idx["clear"]][idx["fill"]] != 0 {
		t.Errorf("fill and clear should be independent:\n%s", sd.String())
	}
	if sd.CrossSection() == 0 {
		t.Error("no cross-section dependences at all")
	}
	// The loop-variable self deps keep every loop section self-dependent;
	// the outside section wrote n and the arrays' declarations read it.
	if !strings.Contains(sd.String(), "->") {
		t.Error("String produced no edges")
	}
}
