// Package analysis implements the two dependence-based program analyses the
// paper demonstrates on top of the profiler (§VII): discovery of potential
// loop parallelism (the DiscoPoP use case) and detection of communication
// patterns in multi-threaded code.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/prog"
)

// LoopReport is the parallelism verdict for one static loop.
type LoopReport struct {
	Loop       prog.Loop
	Iterations uint64
	// Carried dependence counts observed for this loop.
	CarriedRAW    int
	CarriedRAWRed int
	CarriedWAR    int
	CarriedWAW    int
	// Parallelizable means no carried RAW: iterations can run concurrently
	// (carried WAR/WAW are removable by privatization).
	Parallelizable bool
	// Reduction means every carried RAW joins two accesses of the same
	// reduction statement: the loop parallelizes with a reduction clause.
	Reduction bool
	// DoacrossDistance is the smallest carried-RAW iteration gap: a value
	// d >= 2 means up to d consecutive iterations can overlap (DOACROSS /
	// wavefront execution with synchronization every d iterations), even
	// though the loop is not plainly parallelizable. 0 or 1 means no such
	// headroom.
	DoacrossDistance uint32
}

// DiscoverParallelism classifies every executed loop of the program from the
// profiling result (§VII-A). iters supplies per-loop iteration counts from
// the interpreter; loops that never ran are skipped.
func DiscoverParallelism(meta *prog.Meta, res *core.Result, iters map[prog.LoopID]uint64) []LoopReport {
	var out []LoopReport
	for _, l := range meta.Loops() {
		n, ran := iters[l.ID]
		if !ran {
			continue
		}
		r := LoopReport{Loop: l, Iterations: n, Parallelizable: true}
		if ld := res.Loops[l.ID]; ld != nil {
			r.CarriedRAW = ld.CarriedRAW
			r.CarriedRAWRed = ld.CarriedRAWRed
			r.CarriedWAR = ld.CarriedWAR
			r.CarriedWAW = ld.CarriedWAW
			r.Parallelizable = ld.CarriedRAW == 0
			r.Reduction = ld.CarriedRAW > 0 && ld.CarriedRAWRed == ld.CarriedRAW
			if ld.CarriedRAW > 0 {
				r.DoacrossDistance = ld.MinRAWDist
			}
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Loop.ID < out[j].Loop.ID })
	return out
}

// CountIdentified returns Table II's columns: how many loops are
// OMP-annotated and how many of those the dependences identify as
// parallelizable.
func CountIdentified(reports []LoopReport) (omp, identified int) {
	for _, r := range reports {
		if !r.Loop.OMP {
			continue
		}
		omp++
		if r.Parallelizable {
			identified++
		}
	}
	return omp, identified
}

// IdentifiedSet returns the names of OMP loops identified as parallelizable,
// for cross-checking that two profiler configurations agree loop-by-loop
// (Table II's "sig identifies exactly the same loops as DP" claim).
func IdentifiedSet(reports []LoopReport) map[string]bool {
	out := make(map[string]bool)
	for _, r := range reports {
		if r.Loop.OMP && r.Parallelizable {
			out[r.Loop.Name] = true
		}
	}
	return out
}

// CommMatrix is the producer/consumer communication matrix of §VII-B:
// M[p][c] counts RAW dependence instances whose source (producer) ran on
// thread p and whose sink (consumer) on thread c.
type CommMatrix struct {
	Threads int
	M       [][]uint64
}

// Communication derives the matrix from profiled dependences: "knowing the
// communication pattern ... can be important to discover performance
// bottlenecks" — producer-consumer behaviour is a read-after-write relation,
// so the matrix falls directly out of the RAW records with thread IDs.
func Communication(deps *dep.Set, threads int) *CommMatrix {
	m := &CommMatrix{Threads: threads, M: make([][]uint64, threads)}
	for i := range m.M {
		m.M[i] = make([]uint64, threads)
	}
	deps.Range(func(k dep.Key, st dep.Stats) bool {
		if k.Type != dep.RAW {
			return true
		}
		p, c := int(k.SrcThread), int(k.SinkThread)
		if p >= 0 && p < threads && c >= 0 && c < threads {
			m.M[p][c] += st.Count
		}
		return true
	})
	return m
}

// CrossThreadBytes sums the off-diagonal communication volume.
func (m *CommMatrix) CrossThread() uint64 {
	var n uint64
	for p := range m.M {
		for c, v := range m.M[p] {
			if p != c {
				n += v
			}
		}
	}
	return n
}

// Heatmap renders the matrix the way Figure 9 presents it: rows are
// producer threads, columns consumer threads, darker cells mean stronger
// communication. Intensity is normalized to the off-diagonal maximum so the
// self-communication diagonal does not wash out the pattern.
func (m *CommMatrix) Heatmap() string {
	shades := []byte(" .:-=+*#%@")
	var max uint64
	for p := range m.M {
		for c, v := range m.M[p] {
			if p != c && v > max {
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	b.WriteString("     ")
	for c := 0; c < m.Threads; c++ {
		fmt.Fprintf(&b, "%3d", c)
	}
	b.WriteString("   (consumer)\n")
	for p := 0; p < m.Threads; p++ {
		fmt.Fprintf(&b, "%4d ", p)
		for c := 0; c < m.Threads; c++ {
			v := m.M[p][c]
			idx := int(v * uint64(len(shades)-1) / max)
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteString("  ")
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	b.WriteString("(producer)\n")
	return b.String()
}
