package analysis

import (
	"fmt"
	"sort"
	"strings"

	"ddprof/internal/dep"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
)

// SectionDeps is the set-based view the paper names in §VI-B: "set-based
// profiling, which tells whether a data dependence exists between two code
// sections instead of two statements". Sections here are the program's
// static loops (plus an implicit "outside any loop" section); the matrix
// says which sections must stay ordered relative to which — the information
// code partitioning and runtime scheduling consume.
type SectionDeps struct {
	// Sections lists the loops in begin-line order; index 0 is the
	// outside-loops section.
	Sections []string
	// M[i][j] counts dependence records whose source lies in section i and
	// whose sink in section j (i ordered before j at runtime).
	M [][]uint64
}

// Sections derives the loop-to-loop dependence matrix from statement-level
// dependences by mapping each endpoint's line into the loop whose
// [Begin, End] range contains it (innermost range wins).
func Sections(meta *prog.Meta, deps *dep.Set) *SectionDeps {
	loops := append([]prog.Loop(nil), meta.Loops()...)
	sort.Slice(loops, func(i, j int) bool { return loops[i].Begin < loops[j].Begin })

	names := []string{"(outside)"}
	for _, l := range loops {
		name := l.Name
		if name == "" {
			name = fmt.Sprintf("loop@%v", l.Begin)
		}
		names = append(names, name)
	}
	sd := &SectionDeps{Sections: names, M: make([][]uint64, len(names))}
	for i := range sd.M {
		sd.M[i] = make([]uint64, len(names))
	}

	section := func(l loc.SourceLoc) int {
		best := 0 // outside
		bestSpan := loc.SourceLoc(^uint32(0))
		for i, lp := range loops {
			if lp.Begin <= l && l <= lp.End && lp.Begin.File() == l.File() {
				span := lp.End - lp.Begin
				if span < bestSpan {
					best, bestSpan = i+1, span
				}
			}
		}
		return best
	}

	deps.Range(func(k dep.Key, st dep.Stats) bool {
		if k.Type == dep.INIT {
			return true
		}
		sd.M[section(k.Src)][section(k.Sink)] += st.Count
		return true
	})
	return sd
}

// CrossSection counts dependence instances whose endpoints lie in different
// sections — the orderings that constrain partitioning.
func (s *SectionDeps) CrossSection() uint64 {
	var n uint64
	for i := range s.M {
		for j, v := range s.M[i] {
			if i != j {
				n += v
			}
		}
	}
	return n
}

// String renders the non-empty inter-section dependences.
func (s *SectionDeps) String() string {
	var b strings.Builder
	for i := range s.M {
		for j, v := range s.M[i] {
			if v == 0 || i == j {
				continue
			}
			fmt.Fprintf(&b, "%-20s -> %-20s x%d\n", s.Sections[i], s.Sections[j], v)
		}
	}
	return b.String()
}
