package prog

import (
	"testing"

	"ddprof/internal/event"
	"ddprof/internal/loc"
)

func TestAddLoopAndLookup(t *testing.T) {
	m := NewMeta()
	id := m.AddLoop(Loop{Name: "outer", Begin: loc.Pack(1, 10), OMP: true})
	if id != 0 {
		t.Fatalf("first loop ID = %d, want 0", id)
	}
	l := m.Loop(id)
	if l.Name != "outer" || !l.OMP || l.ID != id {
		t.Errorf("Loop() = %+v", l)
	}
	m.SetLoopEnd(id, loc.Pack(1, 20))
	if m.Loop(id).End != loc.Pack(1, 20) {
		t.Error("SetLoopEnd did not stick")
	}
	if got := m.Loop(999); got.ID != NoLoop {
		t.Error("unknown loop should return NoLoop descriptor")
	}
	if len(m.Loops()) != 1 {
		t.Error("Loops() length wrong")
	}
}

func TestCtxInterning(t *testing.T) {
	m := NewMeta()
	a := m.AddLoop(Loop{Name: "a"})
	b := m.AddLoop(Loop{Name: "b"})

	ca := m.PushCtx(0, a)
	if ca == 0 {
		t.Fatal("pushed context must not be the empty context")
	}
	if m.PushCtx(0, a) != ca {
		t.Error("same push must intern to same ID")
	}
	cab := m.PushCtx(ca, b)
	cb := m.PushCtx(0, b)
	if cab == cb {
		t.Error("[a b] and [b] must be distinct contexts")
	}
	if got := m.Stack(cab); len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("Stack(cab) = %v", got)
	}
	if m.Stack(0) != nil {
		t.Error("empty context must have nil stack")
	}
	if m.Stack(9999) != nil {
		t.Error("unknown context must have nil stack")
	}
	if m.NumCtxs() != 4 { // empty, [a], [a b], [b]
		t.Errorf("NumCtxs = %d, want 4", m.NumCtxs())
	}
}

func TestCarriedLoopSingle(t *testing.T) {
	m := NewMeta()
	a := m.AddLoop(Loop{Name: "a"})
	ca := m.PushCtx(0, a)

	// Same iteration: loop-independent.
	v5 := event.PackIterVec([]uint32{5})
	if got := m.CarriedLoop(ca, ca, v5, v5); got != NoLoop {
		t.Errorf("same iteration should be independent, got %d", got)
	}
	// Different iterations: carried at a.
	v6 := event.PackIterVec([]uint32{6})
	if got := m.CarriedLoop(ca, ca, v5, v6); got != a {
		t.Errorf("cross-iteration dep should be carried at %d, got %d", a, got)
	}
}

func TestCarriedLoopNest(t *testing.T) {
	m := NewMeta()
	outer := m.AddLoop(Loop{Name: "outer"})
	inner := m.AddLoop(Loop{Name: "inner"})
	co := m.PushCtx(0, outer)
	coi := m.PushCtx(co, inner)

	// Same outer iteration, different inner: carried at inner.
	src := event.PackIterVec([]uint32{3, 7})
	sink := event.PackIterVec([]uint32{3, 8})
	if got := m.CarriedLoop(coi, coi, src, sink); got != inner {
		t.Errorf("want carried at inner, got %d", got)
	}
	// Different outer iteration: carried at outer (outermost differing).
	sink = event.PackIterVec([]uint32{4, 7})
	if got := m.CarriedLoop(coi, coi, src, sink); got != outer {
		t.Errorf("want carried at outer, got %d", got)
	}
	// Both differ: still the outer loop carries it.
	sink = event.PackIterVec([]uint32{4, 9})
	if got := m.CarriedLoop(coi, coi, src, sink); got != outer {
		t.Errorf("want carried at outer, got %d", got)
	}
}

func TestCarriedLoopMixedDepths(t *testing.T) {
	m := NewMeta()
	outer := m.AddLoop(Loop{Name: "outer"})
	inner := m.AddLoop(Loop{Name: "inner"})
	co := m.PushCtx(0, outer)
	coi := m.PushCtx(co, inner)

	// Source directly in outer (iter 3), sink inside inner of outer iter 3:
	// common loop is outer, same iteration -> independent.
	src := event.PackIterVec([]uint32{3})
	sink := event.PackIterVec([]uint32{3, 5})
	if got := m.CarriedLoop(co, coi, src, sink); got != NoLoop {
		t.Errorf("same outer iteration should be independent, got %d", got)
	}
	// Different outer iterations -> carried at outer.
	sink = event.PackIterVec([]uint32{4, 0})
	if got := m.CarriedLoop(co, coi, src, sink); got != outer {
		t.Errorf("want outer, got %d", got)
	}
}

func TestCarriedLoopDisjointContexts(t *testing.T) {
	m := NewMeta()
	a := m.AddLoop(Loop{Name: "a"})
	b := m.AddLoop(Loop{Name: "b"})
	ca := m.PushCtx(0, a)
	cb := m.PushCtx(0, b)
	// No common enclosing loop: never carried.
	if got := m.CarriedLoop(ca, cb, event.PackIterVec([]uint32{1}), event.PackIterVec([]uint32{9})); got != NoLoop {
		t.Errorf("disjoint loops cannot carry, got %d", got)
	}
	// Outside any loop at all.
	if got := m.CarriedLoop(0, 0, 0, 0); got != NoLoop {
		t.Errorf("no loops at all, got %d", got)
	}
}

func TestCarriedLoopSiblingInnerLoops(t *testing.T) {
	// for i { for j1 {...}; for j2 {...} } — a dep from j1's body to j2's
	// body within the same i iteration is independent w.r.t. i.
	m := NewMeta()
	i := m.AddLoop(Loop{Name: "i"})
	j1 := m.AddLoop(Loop{Name: "j1"})
	j2 := m.AddLoop(Loop{Name: "j2"})
	ci := m.PushCtx(0, i)
	cij1 := m.PushCtx(ci, j1)
	cij2 := m.PushCtx(ci, j2)

	src := event.PackIterVec([]uint32{2, 5})  // i=2, j1=5
	sink := event.PackIterVec([]uint32{2, 0}) // i=2, j2=0
	if got := m.CarriedLoop(cij1, cij2, src, sink); got != NoLoop {
		t.Errorf("same i iteration across sibling loops should be independent, got %d", got)
	}
	sink = event.PackIterVec([]uint32{3, 0}) // i=3
	if got := m.CarriedLoop(cij1, cij2, src, sink); got != i {
		t.Errorf("want carried at i, got %d", got)
	}
}
