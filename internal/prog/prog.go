// Package prog holds static program metadata shared between the
// instrumentation substrate and the profiler: the loop table and the
// registry of static loop contexts.
//
// A loop context is the static stack of loops enclosing a program point
// (outermost first). Contexts are created once while the target program's IR
// is built and referenced from every access event by a small integer ID, so
// the hot instrumentation path never allocates. The detection engine uses
// the context registry together with each access's packed iteration vector
// to classify dependences as loop-carried or loop-independent, which is what
// parallelism discovery (paper §VII-A) consumes.
package prog

import (
	"fmt"
	"math/bits"

	"ddprof/internal/loc"
)

// LoopID identifies a static loop in the target program.
type LoopID uint16

// NoLoop is the LoopID returned when a dependence is loop-independent.
const NoLoop = LoopID(0xFFFF)

// Loop describes one static loop.
type Loop struct {
	ID    LoopID
	Name  string        // diagnostic name, e.g. "bt.x_solve.1"
	Begin loc.SourceLoc // BGN line
	End   loc.SourceLoc // END line
	// OMP records the ground truth used by the Table II experiment: whether
	// the (hand-)parallelized version of the benchmark annotates this loop
	// as a parallel worksharing loop.
	OMP bool
}

// Meta is the static metadata of one target program.
type Meta struct {
	loops []Loop
	// ctxs[id] is the loop stack of context id, outermost first. Context 0
	// is the empty stack (code outside any loop).
	ctxs [][]LoopID
}

// NewMeta returns metadata with the empty context preallocated.
func NewMeta() *Meta {
	return &Meta{ctxs: [][]LoopID{nil}}
}

// AddLoop registers a loop and returns its ID.
func (m *Meta) AddLoop(l Loop) LoopID {
	id := LoopID(len(m.loops))
	l.ID = id
	m.loops = append(m.loops, l)
	return id
}

// Loop returns the descriptor for id.
func (m *Meta) Loop(id LoopID) Loop {
	if int(id) >= len(m.loops) {
		return Loop{ID: NoLoop, Name: fmt.Sprintf("unknown(%d)", id)}
	}
	return m.loops[id]
}

// Loops returns all registered loops.
func (m *Meta) Loops() []Loop { return m.loops }

// SetLoopEnd records the END location of a loop after its body is built.
func (m *Meta) SetLoopEnd(id LoopID, end loc.SourceLoc) {
	if int(id) < len(m.loops) {
		m.loops[id].End = end
	}
}

// PushCtx returns the context formed by pushing loop l onto context parent.
// Contexts are interned: pushing the same loop onto the same parent twice
// returns the same ID. Not safe for concurrent use; IR construction is
// single-threaded.
func (m *Meta) PushCtx(parent uint32, l LoopID) uint32 {
	ps := m.Stack(parent)
	// Linear scan over existing contexts; context creation happens once per
	// static loop, so this is O(#loops²) at build time and free at run time.
	for id, s := range m.ctxs {
		if len(s) != len(ps)+1 {
			continue
		}
		match := s[len(s)-1] == l
		for i := range ps {
			if s[i] != ps[i] {
				match = false
				break
			}
		}
		if match {
			return uint32(id)
		}
	}
	ns := make([]LoopID, len(ps)+1)
	copy(ns, ps)
	ns[len(ps)] = l
	m.ctxs = append(m.ctxs, ns)
	return uint32(len(m.ctxs) - 1)
}

// Stack returns the loop stack of a context, outermost first. The returned
// slice must not be modified.
func (m *Meta) Stack(ctx uint32) []LoopID {
	if int(ctx) >= len(m.ctxs) {
		return nil
	}
	return m.ctxs[ctx]
}

// NumCtxs returns the number of interned contexts including the empty one.
func (m *Meta) NumCtxs() int { return len(m.ctxs) }

// CarriedLoop determines at which loop, if any, a dependence between two
// dynamic accesses is carried. srcCtx/sinkCtx are the accesses' static
// contexts; srcIter/sinkIter their packed iteration vectors (innermost
// counter in the low 16 bits — see event.PackIterVec).
//
// The dependence is carried at the *outermost* common enclosing loop whose
// iteration counters differ (the outermost non-zero entry of the distance
// vector). If all common counters are equal the dependence is
// loop-independent and NoLoop is returned.
func (m *Meta) CarriedLoop(srcCtx, sinkCtx uint32, srcIter, sinkIter uint64) LoopID {
	l, _ := m.CarriedLoopDist(srcCtx, sinkCtx, srcIter, sinkIter)
	return l
}

// CarriedLoopDist additionally returns the dependence distance: the
// iteration gap at the carried loop (Alchemist-style dependence-distance
// profiling). The distance is 0 for loop-independent dependences and is
// computed modulo 2^16 (the packed counter width).
func (m *Meta) CarriedLoopDist(srcCtx, sinkCtx uint32, srcIter, sinkIter uint64) (LoopID, uint32) {
	if srcCtx == sinkCtx {
		// Fast path for the dominant case: both accesses share a static
		// context, so the stacks are identical and the whole prefix is
		// common. The outermost differing counter is the highest differing
		// 16-bit lane of the packed vectors, found with one XOR instead of a
		// per-depth extract-and-compare walk.
		x := srcIter ^ sinkIter
		if x == 0 {
			return NoLoop, 0
		}
		ss := m.Stack(srcCtx)
		if len(ss) == 0 {
			return NoLoop, 0
		}
		d := (bits.Len64(x) - 1) >> 4
		if d > len(ss)-1 {
			// Differing lanes above the tracked stack depth read as equal
			// (see iterAt); rescan from the deepest in-range depth.
			d = len(ss) - 1
		}
		for ; d >= 0; d-- {
			si, ki := iterAt(srcIter, d), iterAt(sinkIter, d)
			if si != ki {
				dd := int32(ki) - int32(si)
				if dd < 0 {
					dd = -dd
				}
				return ss[len(ss)-1-d], uint32(dd)
			}
		}
		return NoLoop, 0
	}
	ss := m.Stack(srcCtx)
	ks := m.Stack(sinkCtx)
	common := len(ss)
	if len(ks) < common {
		common = len(ks)
	}
	for i := 0; i < common; i++ {
		if ss[i] != ks[i] {
			common = i
			break
		}
	}
	for i := 0; i < common; i++ {
		// Depth from innermost within each stack.
		ds := len(ss) - 1 - i
		dk := len(ks) - 1 - i
		si, ki := iterAt(srcIter, ds), iterAt(sinkIter, dk)
		if si != ki {
			d := int32(ki) - int32(si)
			if d < 0 {
				d = -d
			}
			return ss[i], uint32(d)
		}
	}
	return NoLoop, 0
}

// iterAt mirrors event.IterAt; duplicated to keep prog free of higher-level
// imports. Depths beyond the packed window read as zero, which makes
// counters at untracked depths compare equal — a conservative
// (loop-independent) default.
func iterAt(vec uint64, d int) uint16 {
	if d < 0 || d > 3 {
		return 0
	}
	return uint16(vec >> (16 * d))
}
