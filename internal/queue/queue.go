// Package queue provides the bounded queues of the profiler's parallel
// pipeline (paper §IV).
//
// Three implementations with one shape:
//
//   - SPSC: a lock-free single-producer/single-consumer ring. In
//     sequential-target mode the main thread is the only producer and each
//     worker the only consumer of its queue, so SPSC suffices; this is the
//     "lock-free" design responsible for the paper's 1.3–1.6× speedup over
//     the lock-based profiler.
//   - MPSC: a lock-free multi-producer/single-consumer ring (Vyukov bounded
//     queue). Multi-threaded targets push from every target thread inside
//     its lock region (paper §V-A), so the worker's queue needs multiple
//     producers — "the different implementation of lock-free queues" the
//     paper cites as one source of the higher MT memory consumption.
//   - Locked: a mutex-protected ring, kept as the ablation baseline for the
//     lock-based series in Figure 5.
//
// All queues are bounded and allocation-free after construction.
package queue

import (
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// pad keeps hot atomics on separate cache lines.
type pad [56]byte

// SPSC is a lock-free single-producer/single-consumer bounded ring.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	_    pad
	head atomic.Uint64 // next index to pop (consumer-owned)
	_    pad
	tail atomic.Uint64 // next index to push (producer-owned)
	_    pad
}

// NewSPSC returns a ring with capacity rounded up to a power of two.
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// TryPush appends v; it fails if the ring is full. Producer-side only.
func (q *SPSC[T]) TryPush(v T) bool {
	t := q.tail.Load()
	if t-q.head.Load() >= uint64(len(q.buf)) {
		return false
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

// TryPop removes the oldest element; it fails if the ring is empty.
// Consumer-side only.
func (q *SPSC[T]) TryPop() (T, bool) {
	var zero T
	h := q.head.Load()
	if h == q.tail.Load() {
		return zero, false
	}
	v := q.buf[h&q.mask]
	q.buf[h&q.mask] = zero // release references for GC
	q.head.Store(h + 1)
	return v, true
}

// Push spins until v is accepted.
func (q *SPSC[T]) Push(v T) {
	for i := 0; !q.TryPush(v); i++ {
		backoff(i)
	}
}

// Len returns the approximate number of queued elements.
func (q *SPSC[T]) Len() int { return int(q.tail.Load() - q.head.Load()) }

// Cap returns the ring capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// mpscCell pairs an element with its sequence number (Vyukov scheme). The
// cell is padded to a cache line: producers write cell i while the consumer
// polls cell i+1's seq, and without padding the two land on the same line
// and ping-pong it between cores on every push/pop pair.
type mpscCell[T any] struct {
	seq atomic.Uint64
	val T
	_   [cellPad]byte
}

// cellPad rounds mpscCell's seq+val up to 64 bytes for the element shape the
// profiler pushes (48-byte accesses). Other shapes still work, just without
// the exact-line guarantee.
const cellPad = 8

// MPSC is a lock-free multi-producer/single-consumer bounded ring.
type MPSC[T any] struct {
	cells []mpscCell[T]
	mask  uint64
	clear bool // T contains pointers: zero cells on pop for GC
	_     pad
	head  uint64 // consumer position; plain — see TryPop
	_     pad
	tail  atomic.Uint64 // producers CAS here
	_     pad
}

// NewMPSC returns a ring with capacity rounded up to a power of two.
func NewMPSC[T any](capacity int) *MPSC[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	q := &MPSC[T]{cells: make([]mpscCell[T], n), mask: uint64(n - 1)}
	var zero T
	q.clear = hasPointers(reflect.TypeOf(&zero).Elem())
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q
}

// hasPointers reports whether values of t keep heap objects reachable. Popped
// cells of such types must be zeroed; plain-data payloads (the profiler's
// access records) skip the per-pop clear.
func hasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32,
		reflect.Int64, reflect.Uint, reflect.Uint8, reflect.Uint16,
		reflect.Uint32, reflect.Uint64, reflect.Uintptr, reflect.Float32,
		reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return hasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// TryPush appends v; it fails if the ring is full. Safe for any number of
// concurrent producers.
func (q *MPSC[T]) TryPush(v T) bool {
	for {
		t := q.tail.Load()
		cell := &q.cells[t&q.mask]
		seq := cell.seq.Load()
		switch {
		case seq == t:
			if q.tail.CompareAndSwap(t, t+1) {
				cell.val = v
				cell.seq.Store(t + 1)
				return true
			}
		case seq < t:
			return false // cell not yet consumed: full
		default:
			// Another producer claimed t; retry with a fresh tail.
		}
	}
}

// TryPop removes the oldest element; single consumer only.
//
// head is a plain field: only the consumer touches it, and the cell seq
// store below already publishes the slot back to producers with the needed
// ordering, so an atomic head would buy nothing but a second full barrier on
// every pop — measurable on the MT pipeline's one-push-per-access regime.
// Consequently Len is only meaningful from the consumer goroutine or after
// the queue has quiesced.
func (q *MPSC[T]) TryPop() (T, bool) {
	h := q.head
	cell := &q.cells[h&q.mask]
	if cell.seq.Load() != h+1 {
		var zero T
		return zero, false
	}
	v := cell.val
	if q.clear {
		var zero T
		cell.val = zero // release references for GC
	}
	cell.seq.Store(h + uint64(len(q.cells)))
	q.head = h + 1
	return v, true
}

// Push spins until v is accepted. Unlike TryPush it claims a slot
// unconditionally with one fetch-add — the cheapest possible producer path,
// and the one the MT pipeline takes for every single access — then waits for
// the cell to come free if the ring is full. Claimed cells are filled
// independently, so a stalled producer never blocks another's cell, and the
// scheme interoperates with TryPush: both serialize on the tail RMW and fill
// only the cell they claimed.
func (q *MPSC[T]) Push(v T) {
	t := q.tail.Add(1) - 1
	cell := &q.cells[t&q.mask]
	for i := 0; cell.seq.Load() != t; i++ {
		backoff(i) // ring full (or an earlier claimant lagging): wait it out
	}
	cell.val = v
	cell.seq.Store(t + 1)
}

// Len returns the approximate number of queued elements. Valid only from the
// consumer goroutine or while the queue is quiescent (head is consumer-local).
func (q *MPSC[T]) Len() int { return int(q.tail.Load() - q.head) }

// Cap returns the ring capacity.
func (q *MPSC[T]) Cap() int { return len(q.cells) }

// Locked is the lock-based ring used as the Figure 5 ablation baseline.
// "The major synchronization overhead comes from locking and unlocking the
// queues" (paper §IV) — this type is that overhead.
type Locked[T any] struct {
	mu   sync.Mutex
	buf  []T
	head uint64
	tail uint64
	mask uint64
}

// NewLocked returns a ring with capacity rounded up to a power of two.
func NewLocked[T any](capacity int) *Locked[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Locked[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// TryPush appends v; it fails if the ring is full.
func (q *Locked[T]) TryPush(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.tail-q.head >= uint64(len(q.buf)) {
		return false
	}
	q.buf[q.tail&q.mask] = v
	q.tail++
	return true
}

// TryPop removes the oldest element; it fails if the ring is empty.
func (q *Locked[T]) TryPop() (T, bool) {
	var zero T
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == q.tail {
		return zero, false
	}
	v := q.buf[q.head&q.mask]
	q.buf[q.head&q.mask] = zero
	q.head++
	return v, true
}

// Push spins until v is accepted.
func (q *Locked[T]) Push(v T) {
	for i := 0; !q.TryPush(v); i++ {
		backoff(i)
	}
}

// Len returns the number of queued elements.
func (q *Locked[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return int(q.tail - q.head)
}

// Cap returns the ring capacity.
func (q *Locked[T]) Cap() int { return len(q.buf) }

// Backoff is the pipeline-wide wait policy, applied by queue push loops and
// the profiler worker loops alike so that lock-free/lock-based mode
// comparisons (Figure 5/6) measure queue discipline rather than ad-hoc
// backoff differences. It escalates with the number of consecutive failed
// attempts i: busy-spin (cheapest when the peer is mid-operation), then
// scheduler yields (another runnable goroutine may hold the slot), then
// short parks (the peer is genuinely slow; burning a core buys nothing).
func Backoff(i int) {
	switch {
	case i < 64:
		// spin
	case i < 4096:
		runtime.Gosched()
	default:
		time.Sleep(20 * time.Microsecond)
	}
}

// backoff is the internal alias the queue push loops use.
func backoff(i int) { Backoff(i) }
