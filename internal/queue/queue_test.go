package queue

import (
	"sync"
	"testing"
)

// basicQueue is the common surface all three implementations share.
type basicQueue[T any] interface {
	TryPush(T) bool
	TryPop() (T, bool)
	Push(T)
	Len() int
}

func runFIFO(t *testing.T, name string, q basicQueue[int], capacity int) {
	t.Helper()
	if _, ok := q.TryPop(); ok {
		t.Fatalf("%s: pop from empty succeeded", name)
	}
	for i := 0; i < capacity; i++ {
		if !q.TryPush(i) {
			t.Fatalf("%s: push %d/%d failed", name, i, capacity)
		}
	}
	if q.TryPush(999) {
		t.Fatalf("%s: push beyond capacity succeeded", name)
	}
	if q.Len() != capacity {
		t.Fatalf("%s: Len = %d, want %d", name, q.Len(), capacity)
	}
	for i := 0; i < capacity; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("%s: pop %d got (%d,%v)", name, i, v, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatalf("%s: drained queue still pops", name)
	}
	// Wraparound: push/pop interleaved past the ring boundary.
	for i := 0; i < 3*capacity; i++ {
		q.Push(i)
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("%s: wraparound pop %d got (%d,%v)", name, i, v, ok)
		}
	}
}

func TestFIFOSemantics(t *testing.T) {
	runFIFO(t, "SPSC", NewSPSC[int](16), 16)
	runFIFO(t, "MPSC", NewMPSC[int](16), 16)
	runFIFO(t, "Locked", NewLocked[int](16), 16)
}

func TestCapacityRounding(t *testing.T) {
	if got := NewSPSC[int](100).Cap(); got != 128 {
		t.Errorf("SPSC cap = %d, want 128", got)
	}
}

func TestSPSCConcurrent(t *testing.T) {
	const n = 50000
	q := NewSPSC[int](256)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Push(i)
		}
	}()
	// Consumer verifies exact FIFO order: SPSC must never reorder or drop.
	for i := 0; i < n; i++ {
		for {
			v, ok := q.TryPop()
			if ok {
				if v != i {
					t.Fatalf("reordered: got %d at position %d", v, i)
				}
				break
			}
		}
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Errorf("queue not empty at end: %d", q.Len())
	}
}

func TestMPSCConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 5000
	q := NewMPSC[int](512)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(p*perProducer + i)
			}
		}(p)
	}
	// Single consumer: per-producer order must be preserved (the property
	// the profiler relies on: per-thread access order survives the queue),
	// and nothing may be lost or duplicated.
	seen := make([]int, producers*perProducer)
	lastPer := make([]int, producers)
	for p := range lastPer {
		lastPer[p] = -1
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for total := 0; total < producers*perProducer; {
			v, ok := q.TryPop()
			if !ok {
				continue
			}
			seen[v]++
			p := v / perProducer
			i := v % perProducer
			if i <= lastPer[p] {
				t.Errorf("producer %d order violated: %d after %d", p, i, lastPer[p])
				return
			}
			lastPer[p] = i
			total++
		}
	}()
	wg.Wait()
	<-done
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("value %d seen %d times", v, c)
		}
	}
}

func TestLockedConcurrent(t *testing.T) {
	const producers = 4
	const perProducer = 4000
	q := NewLocked[int](128)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(p*perProducer + i)
			}
		}(p)
	}
	seen := make([]bool, producers*perProducer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for total := 0; total < producers*perProducer; {
			if v, ok := q.TryPop(); ok {
				if seen[v] {
					t.Errorf("duplicate %d", v)
					return
				}
				seen[v] = true
				total++
			}
		}
	}()
	wg.Wait()
	<-done
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost", v)
		}
	}
}

func TestPointerReleaseForGC(t *testing.T) {
	// After TryPop, the ring must not retain the popped pointer.
	q := NewSPSC[*int](4)
	x := new(int)
	q.Push(x)
	q.TryPop()
	if q.buf[0] != nil {
		t.Error("SPSC retains popped pointer")
	}
	m := NewMPSC[*int](4)
	m.Push(x)
	m.TryPop()
	if m.cells[0].val != nil {
		t.Error("MPSC retains popped pointer")
	}
	l := NewLocked[*int](4)
	l.Push(x)
	l.TryPop()
	if l.buf[0] != nil {
		t.Error("Locked retains popped pointer")
	}
}
