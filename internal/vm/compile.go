// Package vm compiles minilang programs to flat bytecode and executes them
// with a switch-dispatch loop — the fast instrumentation producer.
//
// The tree-walking interpreter (internal/interp) resolves every variable by
// walking map-based frames and re-dispatches on AST node types at every
// evaluation step; at pipeline rates that makes the producer the bottleneck
// (ROADMAP item 3). The VM removes both costs: a compile pass assigns every
// lexical frame a flat slot layout (minilang.Resolve) and lowers statements
// and expressions to a linear instruction array operating on a value stack,
// so the hot path is an indexed slot read, an arena word access, and one
// hook call per event.
//
// The VM is an exact drop-in for the interpreter: it emits the same event
// stream byte for byte — same simulated addresses (both executors share
// interp.Arena and its deterministic exact-size free lists), same emit
// order, flags, contexts, iteration vectors, timestamps and YieldEvery
// scheduling points. The interpreter stays as the reference semantics;
// equivalence is pinned by the golden-profile suite and FuzzVMEquivalence.
package vm

import (
	"fmt"
	"sort"

	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/minilang"
)

// opcode enumerates bytecode operations. Stack effects are noted as
// pops→pushes. Bindings captured before sub-evaluation (the interpreter
// resolves a store's target before evaluating its value) travel on the value
// stack as w/vid pairs: word indices and variable IDs are far below 2^53, so
// float64 round-trips them exactly.
type opcode uint8

const (
	opConst       opcode = iota // 0→1 push immediate
	opTid                       // 0→1 push thread ID
	opLen                       // 0→1 push array length (no memory access)
	opLoad                      // 0→1 resolve scalar, load, emit Read
	opBindScalar                // 0→2 resolve scalar, push w, vid
	opBindArr                   // 0→3 resolve array, push base, words, vid
	opIdxCheck                  // 4→2 pop idx, vid, words, base; bounds-check; push w=base+idx, vid
	opLoadWKeep                 // 0→1 load word at stack[sp-2] (vid at sp-1), emit Read, push value
	opLoadWPop                  // 2→1 pop vid, w; load, emit Read, push value
	opStoreW                    // 3→0 pop value, vid, w; store, emit Write
	opStoreWKeep                // 1→0 pop value; keep w, vid; store, emit Write
	opBin                       // 2→1 apply binary operator a
	opNeg                       // 1→1
	opNot                       // 1→1
	opToBool                    // 1→1 normalize to 0/1
	opAndCheck                  // 1→0/1 if zero: push 0, jump a
	opOrCheck                   // 1→0/1 if non-zero: push 1, jump a
	opJmp                       // jump a
	opJz                        // 1→0 jump a if zero
	opGeJmp                     // 2→0 pop to, cur; jump a if cur >= to
	opBuiltin                   // b→1 builtin a with b args
	opPop                       // 1→0
	opPop2                      // 2→0
	opDecl                      // 0→2 ensure scalar binding in slot a, push w, vid
	opDeclArr                   // 1→0 pop size, ensure array binding in slot a
	opFree                      // 0→0 emit Removes, release, unbind
	opPushLoop                  // enter loop a: iteration-vector push
	opIterIncr                  // bump innermost iteration counter
	opSetIterPeek               // set innermost iteration counter to stack[sp-1]
	opAddOne                    // stack[sp-1] += 1 (while-loop trip counter)
	opEndLoop                   // leave loop a: pop vector, credit innermost count
	opEndLoopW                  // 1→0 leave while-loop a: pop trip count, pop vector, credit count
	opCallNew                   // allocate pending frame for function a, record call
	opArgScalar                 // 1→0 pop value, alloc+bind param slot b, emit Write
	opArgVar                    // 0→0 alias array arg (ref a) into param slot b, or load+copy scalar
	opInvoke                    // 0→(1 on return) activate pending frame, enter function a
	opRet                       // 1→0 pop return value, unwind to caller
	opSpawn                     // run spawn block a on its thread count, join
	opLock                      // acquire mutex a
	opUnlock                    // release mutex a
	opBarrier                   // wait on the enclosing spawn's barrier
	opFail                      // raise preformatted runtime error a

	// Fused superinstructions. Each one is a compile-time combination of the
	// ops above for a pattern the profiler showed hot; it performs the exact
	// same arena accesses and emits the exact same events in the same order
	// as its unfused expansion, so the instrumentation stream is unchanged —
	// only dispatch count and value-stack traffic drop.
	opBinC         // 1→1 opConst + opBin: apply operator a with constant rhs f
	opIdxLoad      // 4→1 opIdxCheck + opLoadWPop: array element read
	opBindLoad     // 0→3 opBindScalar + opLoadWKeep: scalar reduction prologue
	opIdxCheckLoad // 4→3 opIdxCheck + opLoadWKeep: array reduction prologue
	opBinStore     // 4→0 opBin + opStoreW: reduction epilogue
	opStoreC       // 0→0 opBindScalar + opConst + opStoreW: constant scalar assign
	opDeclC        // 0→0 opDecl + opConst + opStoreW: constant scalar decl
	opHeadC        // 0→0 constant-bound for header: read induction, jump a if >= f
	opHeadLen      // 0→0 len-bound for header: read induction, jump a if >= len(ref b)
	opIncrC        // 0→0 constant-step for increment: bump iter, read+write induction, jump a
	opIdxLoadVar   // 0→1 opBindArr + opLoad + opIdxLoad: a[i] with variable index (refs a, b)
	opIdxAddrVar   // 0→2 opBindArr + opLoad + opIdxCheck: a[i] store prefix (refs a, b)
	opHeadVar      // 0→0 variable-bound for header: read induction (fl), read bound ref b (fl2), jump a if >=
	opReduceVar    // 0→0 opBindLoad + opLoad + opBinStore: x ⊕= y, operator in f, rhs ref b
	opLoadBinC     // 0→1 opLoad + opBinC: push V(ref a) ⊕ f, operator in b
	opBinCJz       // 1→0 opBinC + opJz: pop l, jump a if l ⊕b f is zero
	opIdxLoadVC    // 0→1 opBindArr + opLoadBinC + opIdxLoad: arr[a][ V(b) ⊕op2 f ] read
	opReduceC      // 0→0 opBindLoad + opConst + opBinStore: x ⊕b= f
	opReduceVC     // 0→0 x ⊕= V(y) ⊕2 f: refs a/b, inner operator op2, outer operator in vid

	// opEnd terminates every compiled body: fall off the end of main (or a
	// function with no explicit return). A sentinel instruction keeps the
	// dispatch loop free of a per-instruction pc bounds test.
	opEnd
)

// instr is one bytecode instruction. The event-template fields (ln, ctx,
// vid, fl) are precomputed at compile time so emitting an access costs no
// lookups.
type instr struct {
	op  opcode
	fl  event.Flags
	fl2 event.Flags   // second event's flags, for fusions spanning two flag sets
	op2 uint8         // secondary operator, for fusions spanning two BinOps
	a   int32         // primary operand: slot, ref, target pc, function index…
	b   int32         // secondary operand
	ln  loc.SourceLoc // source location attributed to emitted events
	ctx uint32        // static loop context of emitted events
	vid loc.VarID     // statically-known variable ID (decls, params)
	f   float64       // immediate constant
}

// cand is one candidate (frame, slot) a name may be bound at, ordered
// innermost first; the first bound slot wins at runtime, reproducing the
// interpreter's dynamic frame-chain lookup.
type cand struct {
	depth int32
	slot  int32
}

// ref is one compiled variable reference. The innermost candidate is
// inlined as (d0, s0) — almost every lookup hits it, and keeping it out of
// the candidate slice saves the slice-header load and loop setup on every
// resolve. d0 == -1 means the name is not declared in any enclosing scope.
type ref struct {
	name   string
	d0, s0 int32
	rest   []cand // outer candidates, innermost first (usually empty)
}

// fcode is one compiled code body: the entry main, a function, or a spawn
// block.
type fcode struct {
	name      string
	ins       []instr
	idx       int32 // index in Program.funcs; -1 for main and spawn bodies
	frameSize int
	names     []string // slot -> name (root Vars extraction, debugging)
	release   []int32  // function epilogue: local slots in sorted-name order
	maxStack  int
}

// scode is a compiled Spawn block.
type scode struct {
	fc      *fcode
	threads int
}

// Program is a compiled minilang program, reusable across runs.
type Program struct {
	src    *minilang.Program
	main   *fcode
	funcs  []*fcode
	fidx   map[string]int
	spawns []*scode
	refs   []ref
	strs   []string
	mus    []string // mutex index -> name
	nloops int
}

// compiler holds program-wide compile state.
type compiler struct {
	p        *minilang.Program
	res      *minilang.Resolved
	prg      *Program
	strIdx   map[string]int32
	mutexIdx map[string]int32
}

// Compile lowers p to bytecode. Statically malformed constructs (unknown
// functions, arity mismatches) compile to failing instructions rather than
// compile errors, so programs that never execute the bad path behave exactly
// like they do under the interpreter.
func Compile(p *minilang.Program) (*Program, error) {
	main := p.Funcs["main"]
	if main == nil {
		return nil, fmt.Errorf("vm: program %q has no main", p.Name)
	}
	res := minilang.Resolve(p)
	prg := &Program{src: p, fidx: make(map[string]int), nloops: len(p.Meta.Loops())}
	c := &compiler{p: p, res: res, prg: prg,
		strIdx: make(map[string]int32), mutexIdx: make(map[string]int32)}

	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	prg.funcs = make([]*fcode, len(names))
	for i, n := range names {
		prg.fidx[n] = i
	}
	for i, n := range names {
		prg.funcs[i] = c.compileFunc(p.Funcs[n], res.Funcs[n])
		prg.funcs[i].idx = int32(i)
	}
	// The entry main runs in the root frame with a single-scope chain. (A
	// recursive call to "main" uses the function compilation above, which
	// gets a fresh frame chained to the root, like the interpreter.)
	prg.main = c.compileBody(main.Name, main.Body, []*minilang.Scope{res.Root})
	return prg, nil
}

// str interns a string (names for runtime messages, preformatted errors).
func (c *compiler) str(s string) int32 {
	if i, ok := c.strIdx[s]; ok {
		return i
	}
	i := int32(len(c.prg.strs))
	c.prg.strs = append(c.prg.strs, s)
	c.strIdx[s] = i
	return i
}

// mutex interns a mutex name.
func (c *compiler) mutex(name string) int32 {
	if i, ok := c.mutexIdx[name]; ok {
		return i
	}
	i := int32(len(c.prg.mus))
	c.prg.mus = append(c.prg.mus, name)
	c.mutexIdx[name] = i
	return i
}

// compileFunc compiles a callable function: params occupy the first slots,
// and the epilogue releases locals in sorted name order — the same
// determinism rule the interpreter applies so arena free lists (and with
// them all later simulated addresses) are run-order independent.
func (c *compiler) compileFunc(f *minilang.Func, scope *minilang.Scope) *fcode {
	fc := c.compileBody(f.Name, f.Body, []*minilang.Scope{scope, c.res.Root})
	fc.release = make([]int32, 0, len(scope.Names))
	sorted := append([]string(nil), scope.Names...)
	sort.Strings(sorted)
	for _, n := range sorted {
		fc.release = append(fc.release, int32(scope.Slot[n]))
	}
	return fc
}

// compileBody compiles a statement list under the given static frame chain
// (innermost scope first).
func (c *compiler) compileBody(name string, body []minilang.Stmt, chain []*minilang.Scope) *fcode {
	g := &cgen{c: c, chain: chain, refMemo: make(map[string]int32)}
	for _, s := range body {
		g.stmt(s)
	}
	g.emit(instr{op: opEnd})
	return &fcode{
		name:      name,
		ins:       g.ins,
		idx:       -1,
		frameSize: len(chain[0].Names),
		names:     chain[0].Names,
		maxStack:  computeMaxStack(g.ins),
	}
}

// cgen generates code for one body.
type cgen struct {
	c       *compiler
	chain   []*minilang.Scope
	ins     []instr
	refMemo map[string]int32
}

func (g *cgen) emit(i instr) int32 {
	g.ins = append(g.ins, i)
	return int32(len(g.ins) - 1)
}

// here is the pc of the next instruction to be emitted.
func (g *cgen) here() int32 { return int32(len(g.ins)) }

// patch sets a branch target.
func (g *cgen) patch(at int32, target int32) { g.ins[at].a = target }

// ref interns a compiled reference for name under this body's chain.
func (g *cgen) ref(name string) int32 {
	if i, ok := g.refMemo[name]; ok {
		return i
	}
	r := ref{name: name, d0: -1}
	for d, sc := range g.chain {
		if slot, ok := sc.Slot[name]; ok {
			if r.d0 < 0 {
				r.d0, r.s0 = int32(d), int32(slot)
			} else {
				r.rest = append(r.rest, cand{depth: int32(d), slot: int32(slot)})
			}
		}
	}
	i := int32(len(g.c.prg.refs))
	g.c.prg.refs = append(g.c.prg.refs, r)
	g.refMemo[name] = i
	return i
}

func (g *cgen) fail(format string, args ...any) {
	g.emit(instr{op: opFail, a: g.c.str(fmt.Sprintf(format, args...))})
}

func (g *cgen) stmt(s minilang.Stmt) {
	ln, ctx := s.Pos()
	switch st := s.(type) {
	case *minilang.DeclStmt:
		if cv, ok := st.Init.(*minilang.ConstExpr); ok {
			g.emit(instr{op: opDeclC, a: int32(g.chain[0].Slot[st.Name]),
				vid: g.c.p.Tab.Var(st.Name), f: cv.V, ln: ln, ctx: ctx})
			return
		}
		g.emit(instr{op: opDecl, a: int32(g.chain[0].Slot[st.Name]), vid: g.c.p.Tab.Var(st.Name)})
		g.expr(st.Init, ln, ctx)
		g.emit(instr{op: opStoreW, ln: ln, ctx: ctx})

	case *minilang.DeclArrStmt:
		g.expr(st.Size, ln, ctx)
		g.emit(instr{op: opDeclArr, a: int32(g.chain[0].Slot[st.Name]),
			b: g.c.str(st.Name), vid: g.c.p.Tab.Var(st.Name)})

	case *minilang.AssignStmt:
		// The target binding is captured before the value evaluates, exactly
		// like the interpreter; the fused forms keep that order because
		// nothing between their bind and store emits or fails.
		if st.Reduction {
			be, ok := st.Val.(*minilang.BinExpr)
			if !ok {
				g.emit(instr{op: opBindScalar, a: g.ref(st.Name)})
				g.fail("reduction value is not a binary expression")
				return
			}
			switch rv := be.R.(type) {
			case *minilang.VarExpr:
				// Whole statement in one dispatch; the target's Read/Write
				// carry the reduction flag, the rhs Read does not. The
				// operator travels in f (a and b hold the two refs).
				g.emit(instr{op: opReduceVar, a: g.ref(st.Name), b: g.ref(rv.Name),
					f: float64(be.Op), fl: event.FlagReduction, ln: ln, ctx: ctx})
				return
			case *minilang.ConstExpr:
				g.emit(instr{op: opReduceC, a: g.ref(st.Name), b: int32(be.Op),
					f: rv.V, fl: event.FlagReduction, ln: ln, ctx: ctx})
				return
			case *minilang.BinExpr:
				// x ⊕= y ⊕2 c — the accumulate shape of every dot product
				// and running sum. vid is free here (the target's ID comes
				// from its binding), so it carries the outer operator.
				if lv, ok := rv.L.(*minilang.VarExpr); ok &&
					rv.Op != minilang.OpAnd && rv.Op != minilang.OpOr {
					if cv, ok := rv.R.(*minilang.ConstExpr); ok {
						g.emit(instr{op: opReduceVC, a: g.ref(st.Name), b: g.ref(lv.Name),
							op2: uint8(rv.Op), vid: loc.VarID(be.Op), f: cv.V,
							fl: event.FlagReduction, ln: ln, ctx: ctx})
						return
					}
				}
			}
			g.emit(instr{op: opBindLoad, a: g.ref(st.Name), fl: event.FlagReduction, ln: ln, ctx: ctx})
			g.expr(be.R, ln, ctx)
			g.emit(instr{op: opBinStore, a: int32(be.Op), fl: event.FlagReduction, ln: ln, ctx: ctx})
			return
		}
		if cv, ok := st.Val.(*minilang.ConstExpr); ok {
			g.emit(instr{op: opStoreC, a: g.ref(st.Name), f: cv.V, ln: ln, ctx: ctx})
			return
		}
		g.emit(instr{op: opBindScalar, a: g.ref(st.Name)})
		g.expr(st.Val, ln, ctx)
		g.emit(instr{op: opStoreW, ln: ln, ctx: ctx})

	case *minilang.AssignIdxStmt:
		// Array resolved before the index expression runs (the interpreter
		// captures the binding first, then evaluates and bounds-checks).
		if ve, ok := st.Idx.(*minilang.VarExpr); ok && !st.Reduction {
			// (The reduction form stays unfused: its element read carries
			// FlagReduction while the index read does not, and a fused
			// instruction holds only one flag set.)
			g.emit(instr{op: opIdxAddrVar, a: g.ref(st.Name), b: g.ref(ve.Name), ln: ln, ctx: ctx})
			g.expr(st.Val, ln, ctx)
			g.emit(instr{op: opStoreW, ln: ln, ctx: ctx})
			return
		}
		g.emit(instr{op: opBindArr, a: g.ref(st.Name)})
		g.expr(st.Idx, ln, ctx)
		if st.Reduction {
			be, ok := st.Val.(*minilang.BinExpr)
			if !ok {
				g.emit(instr{op: opIdxCheck, a: g.ref(st.Name), ln: ln})
				g.fail("reduction value is not a binary expression")
				return
			}
			g.emit(instr{op: opIdxCheckLoad, a: g.ref(st.Name), fl: event.FlagReduction, ln: ln, ctx: ctx})
			g.expr(be.R, ln, ctx)
			g.emit(instr{op: opBinStore, a: int32(be.Op), fl: event.FlagReduction, ln: ln, ctx: ctx})
			return
		}
		g.emit(instr{op: opIdxCheck, a: g.ref(st.Name), ln: ln})
		g.expr(st.Val, ln, ctx)
		g.emit(instr{op: opStoreW, ln: ln, ctx: ctx})

	case *minilang.ForStmt:
		// Mirrors interp.execFor: init store at the statement's own context,
		// condition/increment at the body context with FlagInduction, the
		// increment attributed to the iteration it begins (Figure 1's
		// {RAW i}{WAR i} shape). The loop variable's binding is captured
		// once, before the loop, as a w/vid pair kept under the loop's
		// stack temporaries.
		g.emit(instr{op: opDecl, a: int32(g.chain[0].Slot[st.Var]), vid: g.c.p.Tab.Var(st.Var)})
		g.expr(st.From, ln, ctx)
		g.emit(instr{op: opStoreWKeep, fl: event.FlagInduction, ln: ln, ctx: ctx})
		g.emit(instr{op: opPushLoop, a: int32(st.Loop)})
		top := g.here()
		var exit int32
		if cv, ok := st.To.(*minilang.ConstExpr); ok {
			exit = g.emit(instr{op: opHeadC, f: cv.V, fl: event.FlagInduction, ln: ln, ctx: st.BodyCtx})
		} else if le, ok := st.To.(*minilang.LenExpr); ok {
			// The array's length is re-resolved every iteration, after the
			// induction read, exactly where the unfused opLen would run.
			exit = g.emit(instr{op: opHeadLen, b: g.ref(le.Name),
				fl: event.FlagInduction, ln: ln, ctx: st.BodyCtx})
		} else if ve, ok := st.To.(*minilang.VarExpr); ok {
			// Variable bound: the bound's Read re-fires every iteration, after
			// the induction Read and without the induction flag.
			exit = g.emit(instr{op: opHeadVar, b: g.ref(ve.Name),
				fl: event.FlagInduction, ln: ln, ctx: st.BodyCtx})
		} else {
			g.emit(instr{op: opLoadWKeep, fl: event.FlagInduction, ln: ln, ctx: st.BodyCtx})
			g.expr(st.To, ln, st.BodyCtx)
			exit = g.emit(instr{op: opGeJmp})
		}
		for _, bs := range st.Body {
			g.stmt(bs)
		}
		if cv, ok := st.Step.(*minilang.ConstExpr); ok {
			g.emit(instr{op: opIncrC, a: top, f: cv.V, fl: event.FlagInduction, ln: ln, ctx: st.BodyCtx})
		} else {
			g.emit(instr{op: opIterIncr})
			g.emit(instr{op: opLoadWKeep, fl: event.FlagInduction, ln: ln, ctx: st.BodyCtx})
			g.expr(st.Step, ln, st.BodyCtx)
			g.emit(instr{op: opBin, a: int32(minilang.OpAdd)})
			g.emit(instr{op: opStoreWKeep, fl: event.FlagInduction, ln: ln, ctx: st.BodyCtx})
			g.emit(instr{op: opJmp, a: top})
		}
		g.patch(exit, g.here())
		g.emit(instr{op: opEndLoop, a: int32(st.Loop)})
		g.emit(instr{op: opPop2})

	case *minilang.WhileStmt:
		// The interpreter evaluates the condition of iteration k with the
		// iteration vector still showing k-1 (setIter runs after the check),
		// so the trip counter lives on the value stack and is copied into
		// the vector only between condition and body.
		g.emit(instr{op: opPushLoop, a: int32(st.Loop)})
		g.emit(instr{op: opConst, f: 0})
		top := g.here()
		exit := g.condJz(st.Cond, ln, ctx)
		g.emit(instr{op: opSetIterPeek})
		for _, bs := range st.Body {
			g.stmt(bs)
		}
		g.emit(instr{op: opAddOne})
		g.emit(instr{op: opJmp, a: top})
		g.patch(exit, g.here())
		g.emit(instr{op: opEndLoopW, a: int32(st.Loop)})

	case *minilang.IfStmt:
		toElse := g.condJz(st.Cond, ln, ctx)
		for _, bs := range st.Then {
			g.stmt(bs)
		}
		if len(st.Else) > 0 {
			toEnd := g.emit(instr{op: opJmp})
			g.patch(toElse, g.here())
			for _, bs := range st.Else {
				g.stmt(bs)
			}
			g.patch(toEnd, g.here())
		} else {
			g.patch(toElse, g.here())
		}

	case *minilang.CallStmt:
		g.call(st.Fn, st.Args, ln, ctx)
		g.emit(instr{op: opPop})

	case *minilang.ReturnStmt:
		if st.Val != nil {
			g.expr(st.Val, ln, ctx)
		} else {
			g.emit(instr{op: opConst, f: 0})
		}
		g.emit(instr{op: opRet})

	case *minilang.FreeStmt:
		g.emit(instr{op: opFree, a: g.ref(st.Name), ln: ln, ctx: ctx})

	case *minilang.SpawnStmt:
		scope := g.c.res.Spawns[st]
		fc := g.c.compileBody("spawn", st.Body, append([]*minilang.Scope{scope}, g.chain...))
		g.c.prg.spawns = append(g.c.prg.spawns, &scode{fc: fc, threads: st.Threads})
		g.emit(instr{op: opSpawn, a: int32(len(g.c.prg.spawns) - 1)})

	case *minilang.LockStmt:
		mu := g.c.mutex(st.Mutex)
		g.emit(instr{op: opLock, a: mu})
		for _, bs := range st.Body {
			g.stmt(bs)
		}
		g.emit(instr{op: opUnlock, a: mu})

	case *minilang.BarrierStmt:
		g.emit(instr{op: opBarrier})

	default:
		g.fail("unknown statement %T", s)
	}
}

// call compiles a user-function invocation (statement or expression); the
// return value is left on the stack.
func (g *cgen) call(fn string, args []minilang.Expr, ln loc.SourceLoc, ctx uint32) {
	f := g.c.p.Funcs[fn]
	if f == nil {
		g.fail("call to undefined function %q", fn)
		return
	}
	if len(args) != len(f.Params) {
		g.fail("function %q wants %d args, got %d", fn, len(f.Params), len(args))
		return
	}
	fi := int32(g.c.prg.fidx[fn])
	g.emit(instr{op: opCallNew, a: fi})
	for i, prm := range f.Params {
		if ve, ok := args[i].(*minilang.VarExpr); ok {
			// Arrays pass by reference; scalars copy. Which one it is only
			// resolves at runtime, like the interpreter's lookup.
			g.emit(instr{op: opArgVar, a: g.ref(ve.Name), b: int32(i),
				vid: g.c.p.Tab.Var(prm), ln: ln, ctx: ctx})
			continue
		}
		g.expr(args[i], ln, ctx)
		g.emit(instr{op: opArgScalar, b: int32(i), vid: g.c.p.Tab.Var(prm), ln: ln, ctx: ctx})
	}
	g.emit(instr{op: opInvoke, a: fi})
}

// condJz compiles a branch condition followed by a jump-if-zero and returns
// the jump's index for patching. Comparisons against a constant — the shape
// of nearly every if/while guard — fuse the final compare into the jump
// itself (opBinCJz), so `if x % 2 == 1` costs two dispatches, not four.
func (g *cgen) condJz(cond minilang.Expr, ln loc.SourceLoc, ctx uint32) int32 {
	if be, ok := cond.(*minilang.BinExpr); ok &&
		be.Op != minilang.OpAnd && be.Op != minilang.OpOr {
		if cv, ok := be.R.(*minilang.ConstExpr); ok {
			g.expr(be.L, ln, ctx)
			return g.emit(instr{op: opBinCJz, b: int32(be.Op), f: cv.V})
		}
	}
	g.expr(cond, ln, ctx)
	return g.emit(instr{op: opJz})
}

func (g *cgen) expr(e minilang.Expr, ln loc.SourceLoc, ctx uint32) {
	switch ex := e.(type) {
	case *minilang.ConstExpr:
		g.emit(instr{op: opConst, f: ex.V})

	case *minilang.VarExpr:
		g.emit(instr{op: opLoad, a: g.ref(ex.Name), ln: ln, ctx: ctx})

	case *minilang.IndexExpr:
		if ve, ok := ex.Idx.(*minilang.VarExpr); ok {
			g.emit(instr{op: opIdxLoadVar, a: g.ref(ex.Name), b: g.ref(ve.Name), ln: ln, ctx: ctx})
			return
		}
		if be, ok := ex.Idx.(*minilang.BinExpr); ok &&
			be.Op != minilang.OpAnd && be.Op != minilang.OpOr {
			// arr[i ⊕ c] — the stencil neighbour access.
			if ve, ok := be.L.(*minilang.VarExpr); ok {
				if cv, ok := be.R.(*minilang.ConstExpr); ok {
					g.emit(instr{op: opIdxLoadVC, a: g.ref(ex.Name), b: g.ref(ve.Name),
						op2: uint8(be.Op), f: cv.V, ln: ln, ctx: ctx})
					return
				}
			}
		}
		g.emit(instr{op: opBindArr, a: g.ref(ex.Name)})
		g.expr(ex.Idx, ln, ctx)
		g.emit(instr{op: opIdxLoad, a: g.ref(ex.Name), ln: ln, ctx: ctx})

	case *minilang.LenExpr:
		g.emit(instr{op: opLen, a: g.ref(ex.Name)})

	case *minilang.BinExpr:
		switch ex.Op {
		case minilang.OpAnd:
			g.expr(ex.L, ln, ctx)
			sc := g.emit(instr{op: opAndCheck})
			g.expr(ex.R, ln, ctx)
			g.emit(instr{op: opToBool})
			g.patch(sc, g.here())
		case minilang.OpOr:
			g.expr(ex.L, ln, ctx)
			sc := g.emit(instr{op: opOrCheck})
			g.expr(ex.R, ln, ctx)
			g.emit(instr{op: opToBool})
			g.patch(sc, g.here())
		default:
			if cv, ok := ex.R.(*minilang.ConstExpr); ok {
				if lv, ok := ex.L.(*minilang.VarExpr); ok {
					g.emit(instr{op: opLoadBinC, a: g.ref(lv.Name), b: int32(ex.Op),
						f: cv.V, ln: ln, ctx: ctx})
					return
				}
				g.expr(ex.L, ln, ctx)
				g.emit(instr{op: opBinC, a: int32(ex.Op), f: cv.V})
				return
			}
			g.expr(ex.L, ln, ctx)
			g.expr(ex.R, ln, ctx)
			g.emit(instr{op: opBin, a: int32(ex.Op)})
		}

	case *minilang.UnExpr:
		g.expr(ex.X, ln, ctx)
		if ex.Op == minilang.OpNeg {
			g.emit(instr{op: opNeg})
		} else {
			g.emit(instr{op: opNot})
		}

	case *minilang.CallExpr:
		// Builtins shadow user functions in expression position, exactly
		// like the interpreter's eval; arguments still evaluate before an
		// arity mismatch is reported.
		if bi, ok := builtinIdx[ex.Fn]; ok {
			for _, a := range ex.Args {
				g.expr(a, ln, ctx)
			}
			if len(ex.Args) != builtinArity[bi] {
				g.fail("builtin %q wants %d args, got %d", ex.Fn, builtinArity[bi], len(ex.Args))
				return
			}
			g.emit(instr{op: opBuiltin, a: bi, b: int32(len(ex.Args))})
			return
		}
		g.call(ex.Fn, ex.Args, ln, ctx)

	case *minilang.TidExpr:
		g.emit(instr{op: opTid})

	default:
		g.fail("unknown expression %T", e)
	}
}

// builtinIdx and builtinArity enumerate the pure math builtins.
var builtinIdx = map[string]int32{
	"sqrt": 0, "abs": 1, "floor": 2, "ceil": 3, "sin": 4, "cos": 5,
	"exp": 6, "log": 7, "pow": 8, "min": 9, "max": 10,
}

var builtinArity = [...]int{1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2}

// computeMaxStack walks the control-flow graph and returns the peak value
// stack depth, so the dispatch loop can reserve headroom once per call
// instead of bounds-checking every push. Structured codegen guarantees a
// consistent depth at every join point; the walk asserts it.
func computeMaxStack(ins []instr) int {
	depth := make([]int32, len(ins))
	seen := make([]bool, len(ins))
	var max int32
	var visit func(pc int, d int32)
	visit = func(pc int, d int32) {
		for pc < len(ins) {
			if seen[pc] {
				if depth[pc] != d {
					panic(fmt.Sprintf("vm: inconsistent stack depth at pc %d: %d vs %d", pc, depth[pc], d))
				}
				return
			}
			seen[pc] = true
			depth[pc] = d
			i := ins[pc]
			switch i.op {
			case opJmp, opIncrC:
				pc = int(i.a)
				continue
			case opHeadC, opHeadLen, opHeadVar:
				visit(int(i.a), d)
			case opJz, opBinCJz:
				d--
				visit(int(i.a), d)
			case opGeJmp:
				d -= 2
				visit(int(i.a), d)
			case opAndCheck, opOrCheck:
				visit(int(i.a), d) // branch taken: pop 1, push 0/1
				d--
			case opRet, opFail, opEnd:
				return
			default:
				d += stackDelta(i)
			}
			if d > max {
				max = d
			}
			if d < 0 {
				panic(fmt.Sprintf("vm: stack underflow at pc %d", pc))
			}
			pc++
		}
	}
	visit(0, 0)
	return int(max)
}

func stackDelta(i instr) int32 {
	switch i.op {
	case opConst, opTid, opLen, opLoad, opLoadWKeep, opInvoke, opIdxLoadVar,
		opLoadBinC, opIdxLoadVC:
		return 1
	case opBindScalar, opDecl, opIdxAddrVar:
		return 2
	case opBindArr:
		return 3
	case opNeg, opNot, opToBool, opFree, opPushLoop, opIterIncr, opSetIterPeek,
		opAddOne, opEndLoop, opCallNew, opArgVar, opSpawn, opLock, opUnlock,
		opBarrier, opBinC, opStoreC, opDeclC, opHeadC, opHeadLen, opHeadVar,
		opIncrC, opReduceVar, opReduceC, opReduceVC, opEnd:
		return 0
	case opBin, opStoreWKeep, opPop, opDeclArr, opArgScalar, opLoadWPop, opEndLoopW,
		opIdxCheckLoad, opBinCJz:
		return -1
	case opPop2, opIdxCheck:
		return -2
	case opStoreW, opIdxLoad:
		return -3
	case opBindLoad:
		return 3
	case opBinStore:
		return -4
	case opBuiltin:
		return 1 - i.b
	}
	panic(fmt.Sprintf("vm: stackDelta of unhandled opcode %d", i.op))
}
