package vm

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/interp"
	"ddprof/internal/loc"
	"ddprof/internal/minilang"
	"ddprof/internal/prog"
)

// New returns the bytecode Executor.
func New() interp.Executor { return Engine{} }

// Engine is the bytecode Executor: it compiles the program once per run and
// drives the dispatch loop.
type Engine struct{}

// Name implements interp.Executor.
func (Engine) Name() string { return "vm" }

// Run implements interp.Executor.
func (Engine) Run(p *minilang.Program, hook event.Hook, opt interp.Options) (*interp.RunInfo, error) {
	return Run(p, hook, opt)
}

// Run compiles and executes p's main function, emitting the same event
// stream the tree-walking interpreter would.
func Run(p *minilang.Program, hook event.Hook, opt interp.Options) (*interp.RunInfo, error) {
	prg, err := Compile(p)
	if err != nil {
		return nil, err
	}
	return prg.Run(hook, opt)
}

// bind is a variable's storage, the compiled twin of interp's binding.
// Identity matters: the aliased-parameter check at function return compares
// binding pointers, like the interpreter does.
type bind struct {
	base  uint64 // word index
	words int
	varID loc.VarID
	isArr bool
}

// slotEntry is one frame slot. aliasRef, when >= 0, records that the slot
// was filled by passing a caller variable by reference — the ref index used
// to re-resolve the name in the caller's chain at return time, reproducing
// the interpreter's live aliasing check.
type slotEntry struct {
	b        *bind
	aliasRef int32
}

// machine is the shared state of one run (interp's interp struct).
type machine struct {
	prg  *Program
	hook event.Hook
	opt  interp.Options
	ar   *interp.Arena

	mus   []*sync.Mutex
	plain bool // no spawn blocks: arena stores may skip the atomic barrier

	callMu    sync.Mutex
	calls     map[string]uint64
	callEdges map[interp.CallEdge]uint64
	maxDepth  int

	ts        atomic.Uint64
	accesses  atomic.Uint64 // accesses of joined threads
	loopIters []atomic.Uint64
	root      []slotEntry
	threadErr atomic.Pointer[error]
}

func (m *machine) recordCall(caller, callee string, depth int) {
	m.callMu.Lock()
	m.calls[callee]++
	if caller != "" {
		m.callEdges[interp.CallEdge{Caller: caller, Callee: callee}]++
	}
	if depth > m.maxDepth {
		m.maxDepth = depth
	}
	m.callMu.Unlock()
}

// callRec is one saved activation for return unwinding.
type callRec struct {
	retIns    []instr
	retPC     int
	cur       *fcode
	chain     [][]slotEntry
	sp        int
	loopDepth int
	lockDepth int
	pendDepth int
}

// thread is the per-target-thread execution state (interp's tstate).
type thread struct {
	m        *machine
	id       int32
	cur      *fcode
	chain    [][]slotEntry
	bar      *interp.Barrier
	stack    []float64
	sp       int
	iters    []uint32
	loops    []int32 // loop IDs parallel to iters
	baseLoop int     // inherited vector prefix (spawn threads)
	vec      uint64
	accesses uint64
	ret      float64
	fnStack  []string
	calls    []callRec
	pend     [][]slotEntry
	locks    []*sync.Mutex
	plain    bool
	pool     [][][]slotEntry // per-function reusable frames
	slab     []bind          // bump allocator for bindings
}

// load and store go through the arena. When the compiler proved the program
// single-threaded (no spawn blocks), stores skip the atomic barrier — an
// XCHG-class instruction that otherwise serializes every write event.
func (t *thread) load(w uint64) float64 {
	if t.plain {
		return t.m.ar.PlainLoad(w)
	}
	return t.m.ar.Load(w)
}

func (t *thread) store(w uint64, v float64) {
	if t.plain {
		t.m.ar.PlainStore(w, v)
	} else {
		t.m.ar.Store(w, v)
	}
}

// newBind bump-allocates a binding. bind is pointer-free, so a slab is one
// GC object the collector never scans; a retired slab stays alive only while
// some frame slot still points into it. Pointer identity is preserved —
// append never reallocates a slab in place.
func (t *thread) newBind(base uint64, words int, vid loc.VarID, isArr bool) *bind {
	if len(t.slab) == cap(t.slab) {
		t.slab = make([]bind, 0, 512)
	}
	t.slab = append(t.slab, bind{base: base, words: words, varID: vid, isArr: isArr})
	return &t.slab[len(t.slab)-1]
}

// Run executes the compiled program.
func (prg *Program) Run(hook event.Hook, opt interp.Options) (info *interp.RunInfo, err error) {
	m := &machine{
		prg:       prg,
		hook:      hook,
		opt:       opt,
		ar:        interp.NewArena(),
		mus:       make([]*sync.Mutex, len(prg.mus)),
		calls:     make(map[string]uint64),
		callEdges: make(map[interp.CallEdge]uint64),
		loopIters: make([]atomic.Uint64, prg.nloops),
		root:      make([]slotEntry, prg.main.frameSize),
		plain:     len(prg.spawns) == 0,
	}
	for i := range m.mus {
		m.mus[i] = new(sync.Mutex)
	}
	t := &thread{
		m:       m,
		cur:     prg.main,
		chain:   [][]slotEntry{m.root},
		stack:   make([]float64, prg.main.maxStack+1),
		fnStack: []string{"main"},
		plain:   m.plain,
	}
	m.recordCall("", "main", 1)

	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(interp.RuntimeError); ok {
				err = re
				return
			}
			panic(r)
		}
	}()
	t.exec(prg.main)
	if e := m.threadErr.Load(); e != nil {
		return nil, *e
	}

	info = &interp.RunInfo{
		Accesses:  m.accesses.Load() + t.accesses,
		LoopIters: make(map[prog.LoopID]uint64),
		Vars:      make(map[string]float64),
		Calls:     m.calls,
		CallEdges: m.callEdges,
	}
	info.MaxCallDepth = m.maxDepth
	for i := range m.loopIters {
		if n := m.loopIters[i].Load(); n > 0 {
			id := prog.LoopID(i)
			info.LoopIters[id] = n
			l := prg.src.Meta.Loop(id)
			info.LoopRecords = append(info.LoopRecords, dep.LoopRecord{
				Begin: l.Begin, End: l.End, Iterations: n,
			})
		}
	}
	sort.Slice(info.LoopRecords, func(i, j int) bool {
		return info.LoopRecords[i].Begin < info.LoopRecords[j].Begin
	})
	for slot, name := range prg.main.names {
		if e := m.root[slot]; e.b != nil && !e.b.isArr {
			info.Vars[name] = m.ar.Load(e.b.base)
		}
	}
	m.ar.Recycle()
	return info, nil
}

func (t *thread) fail(format string, args ...any) {
	panic(interp.RuntimeError{Msg: fmt.Sprintf(format, args...)})
}

func (t *thread) push(v float64) {
	t.stack[t.sp] = v
	t.sp++
}

func (t *thread) pop() float64 {
	t.sp--
	return t.stack[t.sp]
}

// ensure grows the value stack so the next activation's peak fits without
// per-push checks.
func (t *thread) ensure(maxStack int) {
	if need := t.sp + maxStack + 1; need > len(t.stack) {
		ns := make([]float64, need+64)
		copy(ns, t.stack)
		t.stack = ns
	}
}

// emitHook builds and delivers one access to the hook — the slow half of
// interp.tstate.emit, including the yield decision's position. The caller
// has already counted the access (Reads/Writes only) and checked the hook
// is non-nil, so the nil-hook path costs one increment inline in the
// dispatch loop instead of a call. The event template fields (location,
// context, flags) come straight off the emitting instruction.
func (t *thread) emitHook(kind event.Kind, w uint64, vid loc.VarID, fl event.Flags, i *instr) {
	a := event.Access{
		Addr:    interp.AddrOf(w),
		IterVec: t.vec,
		Loc:     i.ln,
		Var:     vid,
		CtxID:   i.ctx,
		Thread:  t.id,
		Kind:    kind,
		Flags:   fl,
	}
	if t.m.opt.Timestamps {
		a.TS = t.m.ts.Add(1)
	}
	if y := t.m.opt.YieldEvery; y > 0 && t.accesses%uint64(y) == uint64(t.id)%uint64(y) {
		runtime.Gosched()
	}
	t.m.hook.Access(a)
}

// resolve returns the first live binding for a compiled reference — interp's
// frame-chain lookup without the maps. The innermost candidate is inlined in
// the ref and nearly always hits; the walk over outer scopes lives in
// resolveRest so this fast path stays within the inliner's budget.
func (t *thread) resolve(r *ref) *bind {
	if r.d0 >= 0 {
		if b := t.chain[r.d0][r.s0].b; b != nil {
			return b
		}
	}
	return t.resolveRest(r)
}

func (t *thread) resolveRest(r *ref) *bind {
	for _, c := range r.rest {
		if b := t.chain[c.depth][c.slot].b; b != nil {
			return b
		}
	}
	return nil
}

// resolveIn is resolve against an arbitrary chain (the caller's, for the
// aliased-parameter check at return).
func resolveIn(chain [][]slotEntry, r *ref) *bind {
	if r.d0 >= 0 {
		if b := chain[r.d0][r.s0].b; b != nil {
			return b
		}
	}
	for _, c := range r.rest {
		if b := chain[c.depth][c.slot].b; b != nil {
			return b
		}
	}
	return nil
}

// failScalar and failArray are the cold tails of scalarBind/arrayBind,
// split out so the bind checks inline into the dispatch loop.
func (t *thread) failScalar(r *ref, b *bind) {
	if b == nil {
		t.fail("undefined variable %q", r.name)
	}
	t.fail("variable %q is an array", r.name)
}

func (t *thread) failArray(r *ref, b *bind) {
	if b == nil {
		t.fail("undefined array %q", r.name)
	}
	t.fail("variable %q is a scalar", r.name)
}

func (t *thread) scalarBind(r *ref) *bind {
	b := t.resolve(r)
	if b == nil || b.isArr {
		t.failScalar(r, b)
	}
	return b
}

func (t *thread) arrayBind(r *ref) *bind {
	b := t.resolve(r)
	if b == nil || !b.isArr {
		t.failArray(r, b)
	}
	return b
}

// setVec repacks the iteration vector after a counter change.
func (t *thread) setVec() { t.vec = event.PackIterVec(t.iters) }

// incrIter bumps the innermost iteration counter. The innermost counter is
// the low 16 bits of the packed vector, so the common case is a plain
// increment; a full repack only happens when the 16-bit field wraps.
func (t *thread) incrIter() {
	n := len(t.iters) - 1
	t.iters[n]++
	if uint16(t.iters[n]) != 0 {
		t.vec++
	} else {
		t.setVec()
	}
}

// unwindLoops pops loop levels above depth, crediting each loop its
// innermost counter — what interp's early-return path does via
// popLoop+loopIters.Add on the way out.
func (t *thread) unwindLoops(depth int) {
	for len(t.iters) > depth {
		n := t.iters[len(t.iters)-1]
		id := t.loops[len(t.loops)-1]
		t.iters = t.iters[:len(t.iters)-1]
		t.loops = t.loops[:len(t.loops)-1]
		t.m.loopIters[id].Add(uint64(n))
	}
	t.setVec()
}

func (t *thread) unwindLocks(depth int) {
	for len(t.locks) > depth {
		mu := t.locks[len(t.locks)-1]
		t.locks = t.locks[:len(t.locks)-1]
		mu.Unlock()
	}
}

// doReturn unwinds one activation: credit loops, drop locks, release the
// frame's locals (sorted name order, aliased parameter arrays skipped via a
// live caller-chain lookup — both interp rules), restore the caller and push
// the return value.
func (t *thread) doReturn() ([]instr, int) {
	rec := t.calls[len(t.calls)-1]
	t.calls = t.calls[:len(t.calls)-1]
	t.unwindLoops(rec.loopDepth)
	t.unwindLocks(rec.lockDepth)
	t.pend = t.pend[:rec.pendDepth]
	fr := t.chain[0]
	for _, slot := range t.cur.release {
		e := fr[slot]
		if e.b == nil {
			continue
		}
		if e.b.isArr && e.aliasRef >= 0 &&
			resolveIn(rec.chain, &t.m.prg.refs[e.aliasRef]) == e.b {
			continue
		}
		t.m.ar.Release(e.b.base, e.b.words)
	}
	// The frame is dead once unwound (by-reference aliases point at caller
	// bindings; spawn blocks join before any enclosing function returns), so
	// recycle it for the next activation of the same function.
	if idx := t.cur.idx; idx >= 0 && t.pool != nil {
		for s := range fr {
			fr[s] = slotEntry{aliasRef: -1}
		}
		t.pool[idx] = append(t.pool[idx], fr)
	}
	t.fnStack = t.fnStack[:len(t.fnStack)-1]
	t.cur = rec.cur
	t.chain = rec.chain
	t.sp = rec.sp
	t.push(t.ret)
	return rec.retIns, rec.retPC
}

// exec is the dispatch loop. The value stack and its pointer live in locals
// (synced with the thread only at call boundaries) so the hot ops compile to
// indexed loads and stores on a local slice instead of pointer-chasing
// through the thread struct on every push.
func (t *thread) exec(fc *fcode) {
	m := t.m
	prg := m.prg
	ins := fc.ins
	pc := 0
	stack := t.stack
	sp := t.sp
	for {
		i := &ins[pc]
		pc++
		switch i.op {
		case opEnd:
			if len(t.calls) == 0 {
				t.sp = sp
				return
			}
			t.sp = sp
			ins, pc = t.doReturn()
			stack, sp = t.stack, t.sp

		case opConst:
			stack[sp] = i.f
			sp++

		case opTid:
			stack[sp] = float64(t.id)
			sp++

		case opLen:
			r := &prg.refs[i.a]
			b := t.resolve(r)
			if b == nil || !b.isArr {
				t.failArray(r, b)
			}
			stack[sp] = float64(b.words)
			sp++

		case opLoad:
			r := &prg.refs[i.a]
			b := t.resolve(r)
			if b == nil || b.isArr {
				t.failScalar(r, b)
			}
			v := t.load(b.base)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, b.base, b.varID, i.fl, i)
			}
			stack[sp] = v
			sp++

		case opBindScalar:
			r := &prg.refs[i.a]
			b := t.resolve(r)
			if b == nil || b.isArr {
				t.failScalar(r, b)
			}
			stack[sp] = float64(b.base)
			stack[sp+1] = float64(b.varID)
			sp += 2

		case opBindArr:
			r := &prg.refs[i.a]
			b := t.resolve(r)
			if b == nil || !b.isArr {
				t.failArray(r, b)
			}
			stack[sp] = float64(b.base)
			stack[sp+1] = float64(b.words)
			stack[sp+2] = float64(b.varID)
			sp += 3

		case opIdxCheck:
			idx := int(stack[sp-1])
			vid := stack[sp-2]
			words := int(stack[sp-3])
			base := uint64(stack[sp-4])
			if idx < 0 || idx >= words {
				t.fail("index %d out of range [0,%d) for %q at %v",
					idx, words, prg.refs[i.a].name, i.ln)
			}
			stack[sp-4] = float64(base + uint64(idx))
			stack[sp-3] = vid
			sp -= 2

		case opIdxLoad:
			idx := int(stack[sp-1])
			vid := loc.VarID(stack[sp-2])
			words := int(stack[sp-3])
			base := uint64(stack[sp-4])
			if idx < 0 || idx >= words {
				t.fail("index %d out of range [0,%d) for %q at %v",
					idx, words, prg.refs[i.a].name, i.ln)
			}
			w := base + uint64(idx)
			v := t.load(w)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, w, vid, i.fl, i)
			}
			stack[sp-4] = v
			sp -= 3

		case opIdxCheckLoad:
			idx := int(stack[sp-1])
			vid := stack[sp-2]
			words := int(stack[sp-3])
			base := uint64(stack[sp-4])
			if idx < 0 || idx >= words {
				t.fail("index %d out of range [0,%d) for %q at %v",
					idx, words, prg.refs[i.a].name, i.ln)
			}
			w := base + uint64(idx)
			v := t.load(w)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, w, loc.VarID(vid), i.fl, i)
			}
			stack[sp-4] = float64(w)
			stack[sp-3] = vid
			stack[sp-2] = v
			sp--

		case opBindLoad:
			r := &prg.refs[i.a]
			b := t.resolve(r)
			if b == nil || b.isArr {
				t.failScalar(r, b)
			}
			v := t.load(b.base)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, b.base, b.varID, i.fl, i)
			}
			stack[sp] = float64(b.base)
			stack[sp+1] = float64(b.varID)
			stack[sp+2] = v
			sp += 3

		case opLoadWKeep:
			w := uint64(stack[sp-2])
			vid := loc.VarID(stack[sp-1])
			v := t.load(w)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, w, vid, i.fl, i)
			}
			stack[sp] = v
			sp++

		case opLoadWPop:
			vid := loc.VarID(stack[sp-1])
			w := uint64(stack[sp-2])
			v := t.load(w)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, w, vid, i.fl, i)
			}
			stack[sp-2] = v
			sp--

		case opStoreW:
			v := stack[sp-1]
			vid := loc.VarID(stack[sp-2])
			w := uint64(stack[sp-3])
			sp -= 3
			t.store(w, v)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Write, w, vid, i.fl, i)
			}

		case opStoreWKeep:
			v := stack[sp-1]
			sp--
			w := uint64(stack[sp-2])
			vid := loc.VarID(stack[sp-1])
			t.store(w, v)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Write, w, vid, i.fl, i)
			}

		case opBinStore:
			r := stack[sp-1]
			l := stack[sp-2]
			op := minilang.BinOp(i.a)
			var v float64
			if op == minilang.OpAdd {
				v = l + r
			} else if op == minilang.OpMul {
				v = l * r
			} else if op == minilang.OpSub {
				v = l - r
			} else {
				v = t.apply(op, l, r)
			}
			vid := loc.VarID(stack[sp-3])
			w := uint64(stack[sp-4])
			sp -= 4
			t.store(w, v)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Write, w, vid, i.fl, i)
			}

		case opStoreC:
			r := &prg.refs[i.a]
			b := t.resolve(r)
			if b == nil || b.isArr {
				t.failScalar(r, b)
			}
			t.store(b.base, i.f)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Write, b.base, b.varID, i.fl, i)
			}

		case opBin:
			r := stack[sp-1]
			l := stack[sp-2]
			sp--
			op := minilang.BinOp(i.a)
			if op == minilang.OpAdd {
				stack[sp-1] = l + r
			} else if op == minilang.OpMul {
				stack[sp-1] = l * r
			} else if op == minilang.OpSub {
				stack[sp-1] = l - r
			} else {
				stack[sp-1] = t.apply(op, l, r)
			}

		case opBinC:
			l := stack[sp-1]
			op := minilang.BinOp(i.a)
			if op == minilang.OpAdd {
				stack[sp-1] = l + i.f
			} else if op == minilang.OpMul {
				stack[sp-1] = l * i.f
			} else if op == minilang.OpMod && int64(i.f) != 0 {
				stack[sp-1] = float64(int64(l) % int64(i.f))
			} else if op == minilang.OpSub {
				stack[sp-1] = l - i.f
			} else {
				stack[sp-1] = t.apply(op, l, i.f)
			}

		case opNeg:
			stack[sp-1] = -stack[sp-1]

		case opNot:
			stack[sp-1] = boolTo(stack[sp-1] == 0)

		case opToBool:
			stack[sp-1] = boolTo(stack[sp-1] != 0)

		case opAndCheck:
			sp--
			if stack[sp] == 0 {
				stack[sp] = 0
				sp++
				pc = int(i.a)
			}

		case opOrCheck:
			sp--
			if stack[sp] != 0 {
				stack[sp] = 1
				sp++
				pc = int(i.a)
			}

		case opJmp:
			pc = int(i.a)

		case opJz:
			sp--
			if stack[sp] == 0 {
				pc = int(i.a)
			}

		case opGeJmp:
			to := stack[sp-1]
			cur := stack[sp-2]
			sp -= 2
			if cur >= to {
				pc = int(i.a)
			}

		case opHeadC:
			w := uint64(stack[sp-2])
			vid := loc.VarID(stack[sp-1])
			v := t.load(w)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, w, vid, i.fl, i)
			}
			if v >= i.f {
				pc = int(i.a)
			}

		case opHeadLen:
			w := uint64(stack[sp-2])
			vid := loc.VarID(stack[sp-1])
			v := t.load(w)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, w, vid, i.fl, i)
			}
			r := &prg.refs[i.b]
			b := t.resolve(r)
			if b == nil || !b.isArr {
				t.failArray(r, b)
			}
			if v >= float64(b.words) {
				pc = int(i.a)
			}

		case opHeadVar:
			w := uint64(stack[sp-2])
			vid := loc.VarID(stack[sp-1])
			v := t.load(w)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, w, vid, i.fl, i)
			}
			r := &prg.refs[i.b]
			b := t.resolve(r)
			if b == nil || b.isArr {
				t.failScalar(r, b)
			}
			to := t.load(b.base)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, b.base, b.varID, i.fl2, i)
			}
			if v >= to {
				pc = int(i.a)
			}

		case opReduceVar:
			// x ⊕= y in one dispatch: Read x (reduction), Read y (plain),
			// Write x (reduction) — the operator's own failure (division by
			// zero) fires between the reads and the write, like the unfused
			// opBinStore would.
			r := &prg.refs[i.a]
			b := t.resolve(r)
			if b == nil || b.isArr {
				t.failScalar(r, b)
			}
			l := t.load(b.base)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, b.base, b.varID, i.fl, i)
			}
			yr := &prg.refs[i.b]
			yb := t.resolve(yr)
			if yb == nil || yb.isArr {
				t.failScalar(yr, yb)
			}
			rv := t.load(yb.base)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, yb.base, yb.varID, i.fl2, i)
			}
			op := minilang.BinOp(i.f)
			var v float64
			if op == minilang.OpAdd {
				v = l + rv
			} else if op == minilang.OpMul {
				v = l * rv
			} else {
				v = t.apply(op, l, rv)
			}
			t.store(b.base, v)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Write, b.base, b.varID, i.fl, i)
			}

		case opIncrC:
			t.incrIter()
			w := uint64(stack[sp-2])
			vid := loc.VarID(stack[sp-1])
			v := t.load(w)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, w, vid, i.fl, i)
			}
			t.store(w, v+i.f)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Write, w, vid, i.fl, i)
			}
			pc = int(i.a)

		case opIdxLoadVar:
			// Same order as the unfused opBindArr/opLoad/opIdxLoad: array
			// resolution can fail before the index variable's Read fires, and
			// the bounds check fires between the two Reads.
			r := &prg.refs[i.a]
			b := t.resolve(r)
			if b == nil || !b.isArr {
				t.failArray(r, b)
			}
			ir := &prg.refs[i.b]
			ib := t.resolve(ir)
			if ib == nil || ib.isArr {
				t.failScalar(ir, ib)
			}
			iv := t.load(ib.base)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, ib.base, ib.varID, i.fl, i)
			}
			idx := int(iv)
			if idx < 0 || idx >= b.words {
				t.fail("index %d out of range [0,%d) for %q at %v",
					idx, b.words, r.name, i.ln)
			}
			w := b.base + uint64(idx)
			v := t.load(w)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, w, b.varID, i.fl, i)
			}
			stack[sp] = v
			sp++

		case opIdxAddrVar:
			r := &prg.refs[i.a]
			b := t.resolve(r)
			if b == nil || !b.isArr {
				t.failArray(r, b)
			}
			ir := &prg.refs[i.b]
			ib := t.resolve(ir)
			if ib == nil || ib.isArr {
				t.failScalar(ir, ib)
			}
			iv := t.load(ib.base)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, ib.base, ib.varID, i.fl, i)
			}
			idx := int(iv)
			if idx < 0 || idx >= b.words {
				t.fail("index %d out of range [0,%d) for %q at %v",
					idx, b.words, r.name, i.ln)
			}
			stack[sp] = float64(b.base + uint64(idx))
			stack[sp+1] = float64(b.varID)
			sp += 2

		case opLoadBinC:
			r := &prg.refs[i.a]
			b := t.resolve(r)
			if b == nil || b.isArr {
				t.failScalar(r, b)
			}
			l := t.load(b.base)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, b.base, b.varID, i.fl, i)
			}
			op := minilang.BinOp(i.b)
			if op == minilang.OpAdd {
				stack[sp] = l + i.f
			} else if op == minilang.OpSub {
				stack[sp] = l - i.f
			} else if op == minilang.OpMul {
				stack[sp] = l * i.f
			} else if op == minilang.OpMod && int64(i.f) != 0 {
				stack[sp] = float64(int64(l) % int64(i.f))
			} else {
				stack[sp] = t.apply(op, l, i.f)
			}
			sp++

		case opBinCJz:
			l := stack[sp-1]
			sp--
			op := minilang.BinOp(i.b)
			var v float64
			if op == minilang.OpEq {
				v = boolTo(l == i.f)
			} else if op == minilang.OpLt {
				v = boolTo(l < i.f)
			} else if op == minilang.OpGt {
				v = boolTo(l > i.f)
			} else {
				v = t.apply(op, l, i.f)
			}
			if v == 0 {
				pc = int(i.a)
			}

		case opIdxLoadVC:
			// arr[i ⊕ c]: same failure order as the unfused chain — array
			// resolution, index-variable resolution, index Read, operator
			// (apply can fail on div-by-zero), bounds check, element Read.
			r := &prg.refs[i.a]
			b := t.resolve(r)
			if b == nil || !b.isArr {
				t.failArray(r, b)
			}
			ir := &prg.refs[i.b]
			ib := t.resolve(ir)
			if ib == nil || ib.isArr {
				t.failScalar(ir, ib)
			}
			iv := t.load(ib.base)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, ib.base, ib.varID, i.fl, i)
			}
			op := minilang.BinOp(i.op2)
			if op == minilang.OpAdd {
				iv += i.f
			} else if op == minilang.OpSub {
				iv -= i.f
			} else if op == minilang.OpMul {
				iv *= i.f
			} else if op == minilang.OpMod && int64(i.f) != 0 {
				iv = float64(int64(iv) % int64(i.f))
			} else {
				iv = t.apply(op, iv, i.f)
			}
			idx := int(iv)
			if idx < 0 || idx >= b.words {
				t.fail("index %d out of range [0,%d) for %q at %v",
					idx, b.words, r.name, i.ln)
			}
			w := b.base + uint64(idx)
			v := t.load(w)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, w, b.varID, i.fl, i)
			}
			stack[sp] = v
			sp++

		case opReduceC:
			// x ⊕= c in one dispatch: Read x, operator (modulo/division by a
			// zero constant fails between Read and Write), Write x.
			r := &prg.refs[i.a]
			b := t.resolve(r)
			if b == nil || b.isArr {
				t.failScalar(r, b)
			}
			l := t.load(b.base)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, b.base, b.varID, i.fl, i)
			}
			op := minilang.BinOp(i.b)
			var v float64
			if op == minilang.OpAdd {
				v = l + i.f
			} else if op == minilang.OpMul {
				v = l * i.f
			} else if op == minilang.OpSub {
				v = l - i.f
			} else {
				v = t.apply(op, l, i.f)
			}
			t.store(b.base, v)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Write, b.base, b.varID, i.fl, i)
			}

		case opReduceVC:
			// x ⊕= y ⊕2 c: Read x (reduction), Read y (plain), inner then
			// outer operator (either may fail), Write x (reduction).
			r := &prg.refs[i.a]
			b := t.resolve(r)
			if b == nil || b.isArr {
				t.failScalar(r, b)
			}
			l := t.load(b.base)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, b.base, b.varID, i.fl, i)
			}
			yr := &prg.refs[i.b]
			yb := t.resolve(yr)
			if yb == nil || yb.isArr {
				t.failScalar(yr, yb)
			}
			rv := t.load(yb.base)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, yb.base, yb.varID, i.fl2, i)
			}
			inner := minilang.BinOp(i.op2)
			if inner == minilang.OpAdd {
				rv += i.f
			} else if inner == minilang.OpSub {
				rv -= i.f
			} else if inner == minilang.OpMul {
				rv *= i.f
			} else {
				rv = t.apply(inner, rv, i.f)
			}
			outer := minilang.BinOp(i.vid)
			var v float64
			if outer == minilang.OpAdd {
				v = l + rv
			} else if outer == minilang.OpMul {
				v = l * rv
			} else {
				v = t.apply(outer, l, rv)
			}
			t.store(b.base, v)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Write, b.base, b.varID, i.fl, i)
			}

		case opBuiltin:
			if i.b == 2 {
				sp--
				stack[sp-1] = builtin2(i.a, stack[sp-1], stack[sp])
			} else {
				stack[sp-1] = builtin1(i.a, stack[sp-1])
			}

		case opPop:
			sp--

		case opPop2:
			sp -= 2

		case opDecl:
			e := &t.chain[0][i.a]
			if e.b == nil || e.b.isArr {
				e.b = t.newBind(m.ar.Alloc(1), 1, i.vid, false)
				e.aliasRef = -1
			}
			stack[sp] = float64(e.b.base)
			stack[sp+1] = float64(e.b.varID)
			sp += 2

		case opDeclC:
			e := &t.chain[0][i.a]
			if e.b == nil || e.b.isArr {
				e.b = t.newBind(m.ar.Alloc(1), 1, i.vid, false)
				e.aliasRef = -1
			}
			t.store(e.b.base, i.f)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Write, e.b.base, e.b.varID, i.fl, i)
			}

		case opDeclArr:
			sp--
			size := int(stack[sp])
			if size <= 0 {
				t.fail("array %q size %d", prg.strs[i.b], size)
			}
			e := &t.chain[0][i.a]
			if e.b != nil && e.b.isArr && e.b.words == size {
				break // reuse the existing allocation
			}
			e.b = t.newBind(m.ar.Alloc(size), size, i.vid, true)
			e.aliasRef = -1

		case opFree:
			r := &prg.refs[i.a]
			var e *slotEntry
			if r.d0 >= 0 {
				if ent := &t.chain[r.d0][r.s0]; ent.b != nil {
					e = ent
				}
			}
			if e == nil {
				for _, c := range r.rest {
					if ent := &t.chain[c.depth][c.slot]; ent.b != nil {
						e = ent
						break
					}
				}
			}
			if e == nil {
				t.fail("free of undefined %q", r.name)
			}
			b := e.b
			for w := 0; w < b.words; w++ {
				if m.hook != nil {
					t.emitHook(event.Remove, b.base+uint64(w), b.varID, i.fl, i)
				}
			}
			m.ar.Release(b.base, b.words)
			e.b = nil
			e.aliasRef = -1

		case opPushLoop:
			t.iters = append(t.iters, 0)
			t.loops = append(t.loops, i.a)
			// Entering a loop shifts every tracked counter one depth
			// outward and zeroes the new innermost 16-bit field.
			t.vec <<= 16

		case opIterIncr:
			t.incrIter()

		case opSetIterPeek:
			k := uint32(stack[sp-1])
			t.iters[len(t.iters)-1] = k
			t.vec = t.vec&^0xffff | uint64(uint16(k))

		case opAddOne:
			stack[sp-1]++

		case opEndLoop:
			n := t.iters[len(t.iters)-1]
			t.iters = t.iters[:len(t.iters)-1]
			t.loops = t.loops[:len(t.loops)-1]
			t.setVec()
			m.loopIters[i.a].Add(uint64(n))

		case opEndLoopW:
			sp--
			n := uint64(stack[sp])
			t.iters = t.iters[:len(t.iters)-1]
			t.loops = t.loops[:len(t.loops)-1]
			t.setVec()
			m.loopIters[i.a].Add(n)

		case opCallNew:
			callee := prg.funcs[i.a]
			if t.pool == nil {
				t.pool = make([][][]slotEntry, len(prg.funcs))
			}
			var fr []slotEntry
			if fp := t.pool[i.a]; len(fp) > 0 {
				// Frames return to the pool pre-reset at doReturn.
				fr = fp[len(fp)-1]
				t.pool[i.a] = fp[:len(fp)-1]
			} else {
				fr = make([]slotEntry, callee.frameSize)
				for s := range fr {
					fr[s].aliasRef = -1
				}
			}
			t.pend = append(t.pend, fr)
			caller := t.fnStack[len(t.fnStack)-1]
			t.fnStack = append(t.fnStack, callee.name)
			m.recordCall(caller, callee.name, len(t.fnStack))

		case opArgScalar:
			sp--
			v := stack[sp]
			b := t.newBind(m.ar.Alloc(1), 1, i.vid, false)
			t.pend[len(t.pend)-1][i.b] = slotEntry{b: b, aliasRef: -1}
			t.store(b.base, v)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Write, b.base, b.varID, i.fl, i)
			}

		case opArgVar:
			r := &prg.refs[i.a]
			if b := t.resolve(r); b != nil && b.isArr {
				// Pass by reference; remember how to re-resolve the caller's
				// name for the aliasing check at return.
				t.pend[len(t.pend)-1][i.b] = slotEntry{b: b, aliasRef: i.a}
				break
			}
			b := t.scalarBind(r)
			v := t.load(b.base)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Read, b.base, b.varID, i.fl, i)
			}
			nb := t.newBind(m.ar.Alloc(1), 1, i.vid, false)
			t.pend[len(t.pend)-1][i.b] = slotEntry{b: nb, aliasRef: -1}
			t.store(nb.base, v)
			t.accesses++
			if m.hook != nil {
				t.emitHook(event.Write, nb.base, nb.varID, i.fl, i)
			}

		case opInvoke:
			callee := prg.funcs[i.a]
			fr := t.pend[len(t.pend)-1]
			t.calls = append(t.calls, callRec{
				retIns:    ins,
				retPC:     pc,
				cur:       t.cur,
				chain:     t.chain,
				sp:        sp,
				loopDepth: len(t.iters),
				lockDepth: len(t.locks),
				pendDepth: len(t.pend) - 1,
			})
			t.pend = t.pend[:len(t.pend)-1]
			t.cur = callee
			t.chain = [][]slotEntry{fr, m.root}
			t.sp = sp
			t.ensure(callee.maxStack)
			stack = t.stack
			t.ret = 0
			ins = callee.ins
			pc = 0

		case opRet:
			sp--
			t.ret = stack[sp]
			if len(t.calls) == 0 {
				t.unwindLoops(t.baseLoop)
				t.unwindLocks(0)
				t.sp = sp
				return
			}
			t.sp = sp
			ins, pc = t.doReturn()
			stack, sp = t.stack, t.sp

		case opSpawn:
			t.spawn(prg.spawns[i.a])

		case opLock:
			mu := m.mus[i.a]
			mu.Lock()
			t.locks = append(t.locks, mu)

		case opUnlock:
			mu := t.locks[len(t.locks)-1]
			t.locks = t.locks[:len(t.locks)-1]
			mu.Unlock()

		case opBarrier:
			if t.bar == nil {
				t.fail("barrier outside spawn")
			}
			t.bar.Wait()

		case opFail:
			panic(interp.RuntimeError{Msg: prg.strs[i.a]})

		default:
			t.fail("unknown opcode %d", i.op)
		}
	}
}

// spawn runs a compiled Spawn block on its thread count and joins —
// interp.execSpawn with compiled bodies.
func (t *thread) spawn(sc *scode) {
	if t.bar != nil {
		t.fail("nested spawn")
	}
	bar := interp.NewBarrier(sc.threads)
	var wg sync.WaitGroup
	for tid := 0; tid < sc.threads; tid++ {
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			fr := make([]slotEntry, sc.fc.frameSize)
			for s := range fr {
				fr[s].aliasRef = -1
			}
			ts := &thread{
				m:        t.m,
				id:       tid,
				cur:      sc.fc,
				chain:    append([][]slotEntry{fr}, t.chain...),
				bar:      bar,
				stack:    make([]float64, sc.fc.maxStack+1),
				iters:    append([]uint32(nil), t.iters...),
				loops:    append([]int32(nil), t.loops...),
				baseLoop: len(t.iters),
				vec:      t.vec,
				fnStack:  append([]string(nil), t.fnStack...),
			}
			defer func() {
				t.m.accesses.Add(ts.accesses)
				if r := recover(); r != nil {
					if re, ok := r.(interp.RuntimeError); ok {
						e := error(re)
						t.m.threadErr.CompareAndSwap(nil, &e)
						bar.Abort()
						return
					}
					panic(r)
				}
			}()
			ts.exec(sc.fc)
		}(int32(tid))
	}
	wg.Wait()
	if e := t.m.threadErr.Load(); e != nil {
		panic(interp.RuntimeError{Msg: (*e).Error()})
	}
}

// apply computes a non-short-circuit binary operation — interp.apply.
func (t *thread) apply(op minilang.BinOp, l, r float64) float64 {
	switch op {
	case minilang.OpAdd:
		return l + r
	case minilang.OpSub:
		return l - r
	case minilang.OpMul:
		return l * r
	case minilang.OpDiv:
		if r == 0 {
			t.fail("division by zero")
		}
		return l / r
	case minilang.OpIDiv:
		if int64(r) == 0 {
			t.fail("integer division by zero")
		}
		return float64(int64(l) / int64(r))
	case minilang.OpMod:
		if int64(r) == 0 {
			t.fail("modulo by zero")
		}
		return float64(int64(l) % int64(r))
	case minilang.OpBAnd:
		return float64(int64(l) & int64(r))
	case minilang.OpBOr:
		return float64(int64(l) | int64(r))
	case minilang.OpXor:
		return float64(int64(l) ^ int64(r))
	case minilang.OpShl:
		return float64(int64(l) << (uint64(r) & 63))
	case minilang.OpShr:
		return float64(int64(l) >> (uint64(r) & 63))
	case minilang.OpEq:
		return boolTo(l == r)
	case minilang.OpNe:
		return boolTo(l != r)
	case minilang.OpLt:
		return boolTo(l < r)
	case minilang.OpLe:
		return boolTo(l <= r)
	case minilang.OpGt:
		return boolTo(l > r)
	case minilang.OpGe:
		return boolTo(l >= r)
	}
	t.fail("unknown operator %d", op)
	return 0
}

func builtin1(id int32, x float64) float64 {
	switch id {
	case 0:
		return math.Sqrt(x)
	case 1:
		return math.Abs(x)
	case 2:
		return math.Floor(x)
	case 3:
		return math.Ceil(x)
	case 4:
		return math.Sin(x)
	case 5:
		return math.Cos(x)
	case 6:
		return math.Exp(x)
	case 7:
		return math.Log(x)
	}
	return 0
}

func builtin2(id int32, x, y float64) float64 {
	switch id {
	case 8:
		return math.Pow(x, y)
	case 9:
		return math.Min(x, y)
	case 10:
		return math.Max(x, y)
	}
	return 0
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
