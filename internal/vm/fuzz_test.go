package vm_test

import (
	"math/rand"
	"testing"

	"ddprof/internal/interp"
	"ddprof/internal/testgen"
	"ddprof/internal/vm"
)

// checkSeed generates one random program from seed and requires the VM's
// event stream, run summary and error (if any) to match the tree-walking
// interpreter's byte for byte, with and without timestamping.
func checkSeed(t *testing.T, seed int64) {
	t.Helper()
	p := testgen.Program(rand.New(rand.NewSource(seed)))
	expectSame(t, p, interp.Options{})
	expectSame(t, p, interp.Options{Timestamps: true})
}

// TestRandomProgramEquivalence is the deterministic slice of the fuzzer:
// a fixed band of seeds that always runs under plain `go test`.
func TestRandomProgramEquivalence(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 10
	}
	for seed := int64(0); seed < n; seed++ {
		checkSeed(t, seed)
	}
}

// FuzzVMEquivalence lets the fuzz engine explore the seed space:
//
//	go test ./internal/vm/ -fuzz FuzzVMEquivalence
//
// Any divergence between the two executors — stream contents, event order,
// run summary or error text — is a crash.
func FuzzVMEquivalence(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkSeed(t, seed)
	})
}

// BenchmarkProducer measures raw event production (null hook) of both
// executors over the same random program, reporting events/s. This is the
// per-package twin of the exp.Producer benchmark family.
func BenchmarkProducer(b *testing.B) {
	p := testgen.Program(rand.New(rand.NewSource(1)))
	for _, ex := range []interp.Executor{interp.TreeWalker{}, vm.New()} {
		b.Run(ex.Name(), func(b *testing.B) {
			var events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				info, err := ex.Run(p, nil, interp.Options{})
				if err != nil {
					b.Fatal(err)
				}
				events += info.Accesses
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
