package vm_test

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"ddprof/internal/event"
	"ddprof/internal/interp"
	. "ddprof/internal/minilang"
	"ddprof/internal/vm"
	"ddprof/internal/workloads"
)

// capture collects the access stream. The mutex only matters for threaded
// programs; single-threaded captures never contend.
type capture struct {
	mu  sync.Mutex
	evs []event.Access
}

func (c *capture) Access(a event.Access) {
	c.mu.Lock()
	c.evs = append(c.evs, a)
	c.mu.Unlock()
}

// runBoth executes p under both executors and returns streams and infos.
func runBoth(t *testing.T, p *Program, opt interp.Options) (iev, vev []event.Access, iinf, vinf *interp.RunInfo) {
	t.Helper()
	var ic, vc capture
	iinf, ierr := interp.Run(p, &ic, opt)
	vinf, verr := vm.Run(p, &vc, opt)
	if (ierr == nil) != (verr == nil) {
		t.Fatalf("%s: error mismatch: interp=%v vm=%v", p.Name, ierr, verr)
	}
	if ierr != nil && ierr.Error() != verr.Error() {
		t.Fatalf("%s: error text mismatch:\n  interp: %v\n  vm:     %v", p.Name, ierr, verr)
	}
	return ic.evs, vc.evs, iinf, vinf
}

// expectSame runs p under both executors and requires byte-identical event
// streams and equal run summaries. Only for deterministic (single-threaded)
// programs.
func expectSame(t *testing.T, p *Program, opt interp.Options) {
	t.Helper()
	iev, vev, iinf, vinf := runBoth(t, p, opt)
	diffStreams(t, p.Name, iev, vev)
	diffInfo(t, p.Name, iinf, vinf)
}

func diffStreams(t *testing.T, name string, iev, vev []event.Access) {
	t.Helper()
	if len(iev) != len(vev) {
		t.Fatalf("%s: stream length mismatch: interp=%d vm=%d", name, len(iev), len(vev))
	}
	for i := range iev {
		if iev[i] != vev[i] {
			t.Fatalf("%s: event %d differs:\n  interp: %+v\n  vm:     %+v", name, i, iev[i], vev[i])
		}
	}
}

// sameVars compares final-variable maps, treating NaN as equal to NaN
// (reflect.DeepEqual would not).
func sameVars(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			return false
		}
		if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
			return false
		}
	}
	return true
}

func diffInfo(t *testing.T, name string, a, b *interp.RunInfo) {
	t.Helper()
	if a == nil || b == nil {
		if a != b {
			t.Fatalf("%s: info mismatch: interp=%v vm=%v", name, a, b)
		}
		return
	}
	if a.Accesses != b.Accesses {
		t.Errorf("%s: accesses: interp=%d vm=%d", name, a.Accesses, b.Accesses)
	}
	if !reflect.DeepEqual(a.LoopIters, b.LoopIters) {
		t.Errorf("%s: loop iters: interp=%v vm=%v", name, a.LoopIters, b.LoopIters)
	}
	if !reflect.DeepEqual(a.LoopRecords, b.LoopRecords) {
		t.Errorf("%s: loop records: interp=%v vm=%v", name, a.LoopRecords, b.LoopRecords)
	}
	if !sameVars(a.Vars, b.Vars) {
		t.Errorf("%s: vars: interp=%v vm=%v", name, a.Vars, b.Vars)
	}
	if !reflect.DeepEqual(a.Calls, b.Calls) {
		t.Errorf("%s: calls: interp=%v vm=%v", name, a.Calls, b.Calls)
	}
	if !reflect.DeepEqual(a.CallEdges, b.CallEdges) {
		t.Errorf("%s: call edges: interp=%v vm=%v", name, a.CallEdges, b.CallEdges)
	}
	if a.MaxCallDepth != b.MaxCallDepth {
		t.Errorf("%s: max call depth: interp=%d vm=%d", name, a.MaxCallDepth, b.MaxCallDepth)
	}
}

// corpus returns hand-written programs covering every language construct and
// the interpreter quirks the VM must clone.
func corpus() []*Program {
	var ps []*Program
	add := func(name string, fn func(*Block)) {
		p := New(name)
		p.MainFunc(fn)
		ps = append(ps, p)
	}

	add("scalars", func(b *Block) {
		b.Decl("x", Ci(3))
		b.Decl("y", Add(V("x"), Ci(4)))
		b.Assign("x", Mul(V("y"), V("y")))
		b.Reduce("x", OpAdd, Ci(1))
	})

	add("arrays", func(b *Block) {
		b.DeclArr("a", Ci(16))
		b.For("i", Ci(0), Ci(16), Ci(1), LoopOpt{}, func(b *Block) {
			b.Set("a", V("i"), Mul(V("i"), Ci(2)))
		})
		b.Decl("s", Ci(0))
		b.For("i", Ci(0), LenOf("a"), Ci(1), LoopOpt{}, func(b *Block) {
			b.Reduce("s", OpAdd, Idx("a", V("i")))
		})
		b.SetReduce("a", Ci(3), OpMul, Ci(5))
	})

	add("nested-loops", func(b *Block) {
		b.DeclArr("m", Ci(36))
		b.For("i", Ci(0), Ci(6), Ci(1), LoopOpt{}, func(b *Block) {
			b.For("j", Ci(0), Ci(6), Ci(1), LoopOpt{}, func(b *Block) {
				b.Set("m", Add(Mul(V("i"), Ci(6)), V("j")), Add(V("i"), V("j")))
			})
		})
	})

	add("zero-trip", func(b *Block) {
		b.Decl("x", Ci(0))
		b.For("i", Ci(5), Ci(5), Ci(1), LoopOpt{}, func(b *Block) {
			b.Assign("x", Ci(99))
		})
		b.While(Lt(V("x"), Ci(0)), LoopOpt{}, func(b *Block) {
			b.Assign("x", Ci(98))
		})
		b.Assign("x", Add(V("x"), Ci(1)))
	})

	add("while-countdown", func(b *Block) {
		b.Decl("n", Ci(9))
		b.Decl("s", Ci(0))
		b.While(Gt(V("n"), Ci(0)), LoopOpt{}, func(b *Block) {
			b.Reduce("s", OpAdd, V("n"))
			b.Assign("n", Sub(V("n"), Ci(1)))
		})
	})

	add("branches", func(b *Block) {
		b.Decl("x", Ci(7))
		b.If(Gt(V("x"), Ci(3)), func(b *Block) {
			b.Assign("x", Ci(1))
		}, func(b *Block) {
			b.Assign("x", Ci(2))
		})
		b.If(And(Gt(V("x"), Ci(0)), Lt(V("x"), Ci(10))), func(b *Block) {
			b.Assign("x", Ci(3))
		}, nil)
		b.If(Or(Eq(V("x"), Ci(5)), Ne(V("x"), Ci(5))), func(b *Block) {
			b.Assign("x", Neg(V("x")))
		}, nil)
		b.If(Not(Eq(V("x"), Ci(0))), func(b *Block) {
			b.Assign("x", Ci(4))
		}, nil)
	})

	add("short-circuit-effects", func(b *Block) {
		// The right operand must evaluate (and emit) only when needed.
		b.Decl("x", Ci(0))
		b.Decl("y", Ci(1))
		b.If(And(Gt(V("x"), Ci(0)), Gt(V("y"), Ci(0))), func(b *Block) {
			b.Assign("y", Ci(2))
		}, nil)
		b.If(Or(Eq(V("x"), Ci(0)), Gt(V("y"), Ci(0))), func(b *Block) {
			b.Assign("y", Ci(3))
		}, nil)
	})

	{
		p := New("functions")
		p.Func("axpy", []string{"a", "x", "y"}, func(b *Block) {
			b.For("i", Ci(0), LenOf("x"), Ci(1), LoopOpt{}, func(b *Block) {
				b.Set("y", V("i"), Add(Mul(V("a"), Idx("x", V("i"))), Idx("y", V("i"))))
			})
		})
		p.Func("sum", []string{"x"}, func(b *Block) {
			b.Decl("s", Ci(0))
			b.For("i", Ci(0), LenOf("x"), Ci(1), LoopOpt{}, func(b *Block) {
				b.Reduce("s", OpAdd, Idx("x", V("i")))
			})
			b.Ret(V("s"))
		})
		p.MainFunc(func(b *Block) {
			b.DeclArr("u", Ci(8))
			b.DeclArr("v", Ci(8))
			b.For("i", Ci(0), Ci(8), Ci(1), LoopOpt{}, func(b *Block) {
				b.Set("u", V("i"), V("i"))
				b.Set("v", V("i"), Ci(1))
			})
			b.Call("axpy", Ci(2), V("u"), V("v"))
			b.Decl("total", CallE("sum", V("v")))
		})
		ps = append(ps, p)
	}

	{
		p := New("recursion")
		p.Func("fib", []string{"n"}, func(b *Block) {
			b.If(Lt(V("n"), Ci(2)), func(b *Block) {
				b.Ret(V("n"))
			}, nil)
			b.Ret(Add(CallE("fib", Sub(V("n"), Ci(1))), CallE("fib", Sub(V("n"), Ci(2)))))
		})
		p.MainFunc(func(b *Block) {
			b.Decl("r", CallE("fib", Ci(10)))
		})
		ps = append(ps, p)
	}

	{
		// Falling off a function's end returns the last callee's value — an
		// interpreter quirk the VM must clone.
		p := New("fall-off-end")
		p.Func("inner", nil, func(b *Block) {
			b.Ret(Ci(42))
		})
		p.Func("outer", nil, func(b *Block) {
			b.Decl("x", Ci(1))
			b.Call("inner")
		})
		p.MainFunc(func(b *Block) {
			b.Decl("r", CallE("outer"))
		})
		ps = append(ps, p)
	}

	{
		// Return from inside nested loops and a lock-free region: the
		// unwinding must credit loop iteration counts identically.
		p := New("return-unwind")
		p.Func("findfirst", []string{"a", "want"}, func(b *Block) {
			b.For("i", Ci(0), LenOf("a"), Ci(1), LoopOpt{}, func(b *Block) {
				b.For("j", Ci(0), Ci(3), Ci(1), LoopOpt{}, func(b *Block) {
					b.If(Eq(Idx("a", V("i")), V("want")), func(b *Block) {
						b.Ret(V("i"))
					}, nil)
				})
			})
			b.Ret(Neg(Ci(1)))
		})
		p.MainFunc(func(b *Block) {
			b.DeclArr("a", Ci(10))
			b.For("i", Ci(0), Ci(10), Ci(1), LoopOpt{}, func(b *Block) {
				b.Set("a", V("i"), V("i"))
			})
			b.Decl("at", CallE("findfirst", V("a"), Ci(6)))
		})
		ps = append(ps, p)
	}

	add("builtins", func(b *Block) {
		b.Decl("x", CallE("sqrt", Ci(81)))
		b.Assign("x", CallE("pow", V("x"), Ci(2)))
		b.Assign("x", CallE("min", V("x"), CallE("max", Ci(3), Ci(4))))
		b.Assign("x", CallE("abs", Neg(V("x"))))
		b.Assign("x", CallE("floor", CallE("exp", Ci(1))))
		b.Assign("x", Add(CallE("sin", Ci(0)), CallE("cos", Ci(0))))
		b.Assign("x", CallE("ceil", CallE("log", Ci(10))))
	})

	add("int-ops", func(b *Block) {
		b.Decl("x", IDiv(Ci(17), Ci(5)))
		b.Assign("x", Mod(Ci(17), Ci(5)))
		b.Assign("x", BAnd(Ci(12), Ci(10)))
		b.Assign("x", BOr(Ci(12), Ci(10)))
		b.Assign("x", Xor(Ci(12), Ci(10)))
		b.Assign("x", Shl(Ci(3), Ci(4)))
		b.Assign("x", Shr(Ci(48), Ci(2)))
		b.Assign("x", Div(Ci(7), Ci(2)))
	})

	add("free-redecl", func(b *Block) {
		b.DeclArr("a", Ci(8))
		b.Set("a", Ci(0), Ci(1))
		b.Free("a")
		b.DeclArr("a", Ci(8))
		b.Set("a", Ci(1), Ci(2))
		b.DeclArr("a", Ci(8)) // same size: reused, no events
		b.Set("a", Ci(2), Ci(3))
		b.DeclArr("a", Ci(4)) // different size: fresh allocation
		b.Set("a", Ci(3), Ci(4))
		b.Decl("x", Ci(5))
		b.Free("x")
		b.Decl("x", Ci(6))
	})

	{
		// Computed indices through pointer-like indirection: an index array
		// drives accesses into a data array.
		p := New("indirect")
		p.MainFunc(func(b *Block) {
			b.DeclArr("idx", Ci(8))
			b.DeclArr("data", Ci(8))
			b.For("i", Ci(0), Ci(8), Ci(1), LoopOpt{}, func(b *Block) {
				b.Set("idx", V("i"), Mod(Mul(V("i"), Ci(5)), Ci(8)))
				b.Set("data", V("i"), Ci(0))
			})
			b.For("i", Ci(0), Ci(8), Ci(1), LoopOpt{}, func(b *Block) {
				b.Set("data", Idx("idx", V("i")), V("i"))
			})
		})
		ps = append(ps, p)
	}

	return ps
}

func TestCorpusEquivalence(t *testing.T) {
	for _, p := range corpus() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			expectSame(t, p, interp.Options{})
			expectSame(t, p, interp.Options{Timestamps: true})
		})
	}
}

// TestRuntimeErrorEquivalence pins error text and the event prefix emitted
// before each failure.
func TestRuntimeErrorEquivalence(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*Block)
	}{
		{"undefined-var", func(b *Block) { b.Assign("nope", Ci(1)) }},
		{"undefined-array", func(b *Block) { b.Set("nope", Ci(0), Ci(1)) }},
		{"undefined-read", func(b *Block) { b.Decl("x", V("nope")) }},
		{"scalar-as-array", func(b *Block) {
			b.Decl("x", Ci(1))
			b.Set("x", Ci(0), Ci(2))
		}},
		{"array-as-scalar", func(b *Block) {
			b.DeclArr("a", Ci(4))
			b.Assign("a", Ci(2))
		}},
		{"oob-low", func(b *Block) {
			b.DeclArr("a", Ci(4))
			b.Set("a", Neg(Ci(1)), Ci(0))
		}},
		{"oob-high", func(b *Block) {
			b.DeclArr("a", Ci(4))
			b.Decl("x", Idx("a", Ci(4)))
		}},
		{"bad-size", func(b *Block) {
			b.Decl("n", Ci(0))
			b.DeclArr("a", V("n"))
		}},
		{"div-zero", func(b *Block) { b.Decl("x", Div(Ci(1), Ci(0))) }},
		{"idiv-zero", func(b *Block) { b.Decl("x", IDiv(Ci(1), Ci(0))) }},
		{"mod-zero", func(b *Block) { b.Decl("x", Mod(Ci(1), Ci(0))) }},
		{"free-undefined", func(b *Block) { b.Free("nope") }},
		{"unknown-function", func(b *Block) { b.Call("nope", Ci(1)) }},
		{"arity", func(b *Block) {
			b.Decl("x", CallE("sqrt", Ci(1), Ci(2)))
		}},
		{"barrier-outside-spawn", func(b *Block) { b.Barrier() }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := New("err-" + tc.name)
			p.MainFunc(func(b *Block) {
				b.Decl("warm", Ci(1)) // some events before the failure
				tc.fn(b)
			})
			iev, vev, _, _ := runBoth(t, p, interp.Options{})
			diffStreams(t, p.Name, iev, vev)
		})
	}
}

func TestUserFunctionArityError(t *testing.T) {
	p := New("err-user-arity")
	p.Func("f", []string{"a", "b"}, func(b *Block) {
		b.Ret(Add(V("a"), V("b")))
	})
	p.MainFunc(func(b *Block) {
		b.Call("f", Ci(1))
	})
	iev, vev, _, _ := runBoth(t, p, interp.Options{})
	diffStreams(t, p.Name, iev, vev)
}

// TestWorkloadEquivalence is the broad pin: every sequential workload
// program's event stream must be byte-identical under both executors.
func TestWorkloadEquivalence(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build(workloads.Config{Scale: 0.25, Threads: 4})
			expectSame(t, p, interp.Options{})
		})
	}
}

// --- VM edge cases (satellite 4) ---

// TestAddrReuseAfterFree pins that both executors recycle the same simulated
// addresses: free an array, allocate an equal-sized one, and require the
// second allocation's events to land on the first's addresses.
func TestAddrReuseAfterFree(t *testing.T) {
	p := New("addr-reuse")
	p.MainFunc(func(b *Block) {
		b.DeclArr("a", Ci(6))
		b.Set("a", Ci(0), Ci(1))
		b.Free("a")
		b.DeclArr("fresh", Ci(6))
		b.Set("fresh", Ci(0), Ci(2))
	})
	var vc capture
	if _, err := vm.Run(p, &vc, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	// Events: a[0] write, 6 removes, fresh[0] write. The fresh array must
	// reuse a's storage.
	n := len(vc.evs)
	first, last := vc.evs[0], vc.evs[n-1]
	if first.Kind != event.Write || last.Kind != event.Write {
		t.Fatalf("unexpected stream shape: %+v", vc.evs)
	}
	if first.Addr != last.Addr {
		t.Errorf("freed storage not recycled: first write at %#x, post-free write at %#x", first.Addr, last.Addr)
	}
	expectSame(t, p, interp.Options{})
}

// TestAliasThroughCalls pins by-reference array passing: writes through a
// parameter must hit the caller's addresses, through two call levels, and
// the aliased storage must survive both returns.
func TestAliasThroughCalls(t *testing.T) {
	p := New("alias-calls")
	p.Func("deep", []string{"z"}, func(b *Block) {
		b.Set("z", Ci(1), Ci(77))
	})
	p.Func("mid", []string{"y"}, func(b *Block) {
		b.Set("y", Ci(0), Ci(66))
		b.Call("deep", V("y"))
	})
	p.MainFunc(func(b *Block) {
		b.DeclArr("a", Ci(4))
		b.Set("a", Ci(0), Ci(0))
		b.Call("mid", V("a"))
		b.Decl("x", Idx("a", Ci(1)))
	})
	var vc capture
	info, err := vm.Run(p, &vc, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Vars["x"]; got != 77 {
		t.Errorf("write through aliased parameter lost: x = %v, want 77", got)
	}
	// a[0]'s direct write and mid's write through y must share an address.
	byVal := map[uint64]int{}
	for _, e := range vc.evs {
		if e.Kind == event.Write {
			byVal[e.Addr]++
		}
	}
	for addr, n := range byVal {
		if n > 1 {
			// a[0]: written by main then by mid — the alias collapses them.
			_ = addr
			return
		}
	}
	t.Errorf("no address written twice; aliasing broke: %+v", byVal)
}

func TestAliasEquivalence(t *testing.T) {
	p := New("alias-equiv")
	p.Func("deep", []string{"z"}, func(b *Block) {
		b.Set("z", Ci(1), Ci(77))
	})
	p.Func("mid", []string{"y"}, func(b *Block) {
		b.Set("y", Ci(0), Ci(66))
		b.Call("deep", V("y"))
		b.DeclArr("local", Ci(3))
		b.Set("local", Ci(0), Ci(5))
	})
	p.MainFunc(func(b *Block) {
		b.DeclArr("a", Ci(4))
		b.Call("mid", V("a"))
		b.Call("mid", V("a"))
		b.Decl("x", Idx("a", Ci(1)))
	})
	expectSame(t, p, interp.Options{})
}

// TestZeroTripLoopContext pins the loop-context stack across zero-trip
// loops: the iteration vector must push and pop cleanly, leaving following
// events with the enclosing context's vector.
func TestZeroTripLoopContext(t *testing.T) {
	p := New("zero-trip-ctx")
	p.MainFunc(func(b *Block) {
		b.Decl("x", Ci(0))
		b.For("i", Ci(0), Ci(2), Ci(1), LoopOpt{}, func(b *Block) {
			b.For("j", Ci(3), Ci(3), Ci(1), LoopOpt{}, func(b *Block) { // zero-trip
				b.Assign("x", Ci(9))
			}) //nolint
			b.Assign("x", Add(V("x"), Ci(1)))
		})
		b.Assign("x", Add(V("x"), Ci(100)))
	})
	iev, vev, iinf, vinf := runBoth(t, p, interp.Options{})
	diffStreams(t, p.Name, iev, vev)
	diffInfo(t, p.Name, iinf, vinf)
	// The final statement must carry the empty iteration vector.
	last := vev[len(vev)-1]
	if last.IterVec != 0 {
		t.Errorf("post-loop event kept a stale iteration vector: %#x", last.IterVec)
	}
	// The zero-trip inner loop must not appear in the loop records.
	if n := len(vinf.LoopRecords); n != 1 {
		t.Errorf("want 1 executed loop record, got %d: %+v", n, vinf.LoopRecords)
	}
}

// threadStreams groups a captured stream by thread, clears timestamps
// (global stamp order is scheduling-dependent) and canonicalizes addresses
// to per-thread first-occurrence indices: per-thread locals allocate from
// the shared arena, so their raw addresses depend on thread interleaving in
// BOTH executors, but the per-thread address *pattern* is deterministic as
// long as the program does not recycle storage across threads.
func threadStreams(evs []event.Access) map[int32][]event.Access {
	m := make(map[int32][]event.Access)
	canon := make(map[int32]map[uint64]uint64)
	for _, e := range evs {
		e.TS = 0
		c := canon[e.Thread]
		if c == nil {
			c = make(map[uint64]uint64)
			canon[e.Thread] = c
		}
		id, ok := c[e.Addr]
		if !ok {
			id = uint64(len(c))
			c[e.Addr] = id
		}
		e.Addr = id
		m[e.Thread] = append(m[e.Thread], e)
	}
	return m
}

// TestMutexHandoffYield1 pins threaded behavior under maximal scheduler
// fuzz: per-thread event sequences must match between executors, and the
// lock-protected counter must still total correctly in both.
func TestMutexHandoffYield1(t *testing.T) {
	const threads, rounds = 4, 25
	p := New("mutex-handoff")
	p.MainFunc(func(b *Block) {
		b.Decl("counter", Ci(0))
		b.Spawn(threads, func(b *Block) {
			b.For("i", Ci(0), Ci(rounds), Ci(1), LoopOpt{}, func(b *Block) {
				b.Lock("m", func(b *Block) {
					b.Assign("counter", Add(V("counter"), Ci(1)))
				})
			})
			b.Barrier()
			b.Lock("m", func(b *Block) {
				b.Decl("seen", V("counter"))
			})
		})
		b.Decl("final", V("counter"))
	})
	opt := interp.Options{Timestamps: true, YieldEvery: 1}
	iev, vev, iinf, vinf := runBoth(t, p, opt)
	want := float64(threads * rounds)
	if iinf.Vars["final"] != want || vinf.Vars["final"] != want {
		t.Fatalf("lock-protected counter lost updates: interp=%v vm=%v want %v",
			iinf.Vars["final"], vinf.Vars["final"], want)
	}
	it, vt := threadStreams(iev), threadStreams(vev)
	if len(it) != len(vt) {
		t.Fatalf("thread count mismatch: interp=%d vm=%d", len(it), len(vt))
	}
	for id, is := range it {
		vs := vt[id]
		if len(is) != len(vs) {
			t.Fatalf("thread %d: stream length mismatch: interp=%d vm=%d", id, len(is), len(vs))
		}
		for i := range is {
			// Reads of the shared counter see scheduling-dependent values;
			// compare the instrumentation-visible fields.
			if is[i] != vs[i] {
				t.Fatalf("thread %d event %d differs:\n  interp: %+v\n  vm:     %+v", id, i, is[i], vs[i])
			}
		}
	}
	diffInfo(t, p.Name, iinf, vinf)
}

// TestSpawnEquivalence compares per-thread streams of a barrier-phased
// parallel program, including a parallel workload build.
func TestSpawnEquivalence(t *testing.T) {
	p := New("spawn-phases")
	p.MainFunc(func(b *Block) {
		b.DeclArr("a", Ci(64))
		b.DeclArr("bb", Ci(64))
		b.For("i", Ci(0), Ci(64), Ci(1), LoopOpt{}, func(b *Block) {
			b.Set("a", V("i"), V("i"))
		})
		b.Spawn(4, func(b *Block) {
			b.Decl("lo", Mul(Tid(), Ci(16)))
			b.For("i", V("lo"), Add(V("lo"), Ci(16)), Ci(1), LoopOpt{}, func(b *Block) {
				b.Set("bb", V("i"), Mul(Idx("a", V("i")), Ci(2)))
			})
			b.Barrier()
			b.For("i", V("lo"), Add(V("lo"), Ci(16)), Ci(1), LoopOpt{}, func(b *Block) {
				b.Set("a", V("i"), Idx("bb", Sub(Ci(63), V("i"))))
			})
		})
		b.Decl("check", Idx("a", Ci(5)))
	})
	iev, vev, iinf, vinf := runBoth(t, p, interp.Options{Timestamps: true})
	it, vt := threadStreams(iev), threadStreams(vev)
	if len(it) != len(vt) {
		t.Fatalf("thread group mismatch: interp=%d vm=%d", len(it), len(vt))
	}
	for id, is := range it {
		vs := vt[id]
		if !reflect.DeepEqual(is, vs) {
			t.Fatalf("thread %d streams differ (interp %d events, vm %d)", id, len(is), len(vs))
		}
	}
	diffInfo(t, p.Name, iinf, vinf)
}

func TestParallelWorkloadEquivalence(t *testing.T) {
	for _, w := range workloads.Starbench() {
		w := w
		if w.BuildParallel == nil {
			continue
		}
		t.Run(w.Name, func(t *testing.T) {
			p := w.BuildParallel(workloads.Config{Scale: 0.1, Threads: 3})
			iev, vev, iinf, vinf := runBoth(t, p, interp.Options{Timestamps: true})
			it, vt := threadStreams(iev), threadStreams(vev)
			if len(it) != len(vt) {
				t.Fatalf("thread group mismatch: interp=%d vm=%d", len(it), len(vt))
			}
			for id, is := range it {
				vs := vt[id]
				if len(is) != len(vs) {
					t.Fatalf("thread %d: length mismatch interp=%d vm=%d", id, len(is), len(vs))
				}
			}
			diffInfo(t, p.Name, iinf, vinf)
		})
	}
}

// TestNestedSpawnError pins the doubled error prefix the interpreter
// produces when a spawned thread fails.
func TestNestedSpawnError(t *testing.T) {
	p := New("thread-error")
	p.MainFunc(func(b *Block) {
		b.Spawn(2, func(b *Block) {
			b.If(Eq(Tid(), Ci(1)), func(b *Block) {
				b.Decl("x", Div(Ci(1), Ci(0)))
			}, nil)
		})
	})
	_, ierr := interp.Run(p, nil, interp.Options{})
	_, verr := vm.Run(p, nil, interp.Options{})
	if ierr == nil || verr == nil {
		t.Fatalf("want errors, got interp=%v vm=%v", ierr, verr)
	}
	if ierr.Error() != verr.Error() {
		t.Fatalf("error mismatch:\n  interp: %v\n  vm:     %v", ierr, verr)
	}
}
