package vm_test

import (
	"testing"

	"ddprof/internal/interp"
	"ddprof/internal/minilang"
	"ddprof/internal/vm"
	"ddprof/internal/workloads"
)

// The benchmarks below price the VM's two halves separately on a real
// workload (NAS CG at quarter scale): BenchmarkCompileOnly is the one-time
// translation cost a Run amortizes, BenchmarkExecPrecompiled the per-run
// dispatch cost once compiled, and BenchmarkExecInterp the tree-walking
// reference on the same program. The producer families in the root
// package's BenchmarkProducer measure events/s on synthetic instruction
// mixes; this trio answers "what does compilation cost and what does it
// buy on a full benchmark kernel".

func buildCG() *minilang.Program {
	w, _ := workloads.ByName("CG")
	return w.Build(workloads.Config{Scale: 0.25})
}

func BenchmarkCompileOnly(b *testing.B) {
	p := buildCG()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Compile(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecPrecompiled(b *testing.B) {
	p := buildCG()
	prg, err := vm.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prg.Run(nil, interp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecInterp(b *testing.B) {
	p := buildCG()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Run(p, nil, interp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
