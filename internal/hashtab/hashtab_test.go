package hashtab

import (
	"testing"
	"testing/quick"

	"ddprof/internal/loc"
	"ddprof/internal/sig"
)

var _ sig.Store = (*Table)(nil)

func slot(line int) sig.Slot {
	return sig.PackSlot(loc.Pack(1, line), 0, 0, 0, 0, 0)
}

func TestBasicOps(t *testing.T) {
	h := New(64)
	if _, ok := h.LookupWrite(1); ok {
		t.Fatal("fresh table has entries")
	}
	h.SetWrite(1, slot(10))
	h.SetRead(1, slot(20))
	if w, ok := h.LookupWrite(1); !ok || w.Loc().Line() != 10 {
		t.Fatal("write lookup failed")
	}
	if r, ok := h.LookupRead(1); !ok || r.Loc().Line() != 20 {
		t.Fatal("read lookup failed")
	}
	if h.Entries() != 1 {
		t.Fatalf("Entries = %d, want 1 (read+write share an entry)", h.Entries())
	}
	h.Remove(1)
	if _, ok := h.LookupWrite(1); ok {
		t.Fatal("entry survives Remove")
	}
	if h.Entries() != 0 {
		t.Fatal("Entries != 0 after Remove")
	}
}

func TestChainingExactness(t *testing.T) {
	// Tiny directory forces long chains; lookups must still be exact.
	h := New(4)
	const n = 500
	for i := uint64(0); i < n; i++ {
		h.SetWrite(i*8, slot(int(i)+1))
	}
	if h.Entries() != n {
		t.Fatalf("Entries = %d, want %d", h.Entries(), n)
	}
	for i := uint64(0); i < n; i++ {
		s, ok := h.LookupWrite(i * 8)
		if !ok || s.Loc().Line() != int(i)+1 {
			t.Fatalf("chained entry %d wrong", i)
		}
	}
	if _, ok := h.LookupWrite(n * 8); ok {
		t.Error("false positive in hash table")
	}
}

func TestRemoveFromChainMiddle(t *testing.T) {
	h := New(1) // single bucket: everything chains
	h.SetWrite(1, slot(1))
	h.SetWrite(2, slot(2))
	h.SetWrite(3, slot(3))
	h.Remove(2)
	if _, ok := h.LookupWrite(2); ok {
		t.Fatal("removed entry still found")
	}
	for _, a := range []uint64{1, 3} {
		if s, ok := h.LookupWrite(a); !ok || s.Loc().Line() != int(a) {
			t.Fatalf("neighbour %d damaged by removal", a)
		}
	}
	h.Remove(99) // absent: no panic, no change
	if h.Entries() != 2 {
		t.Fatalf("Entries = %d, want 2", h.Entries())
	}
}

func TestBucketRounding(t *testing.T) {
	h := New(100)
	if len(h.buckets) != 128 {
		t.Errorf("buckets = %d, want next power of two 128", len(h.buckets))
	}
}

func TestBytesGrow(t *testing.T) {
	h := New(16)
	b0 := h.Bytes()
	h.SetWrite(1, slot(1))
	if h.Bytes() <= b0 {
		t.Error("Bytes did not grow with an entry")
	}
	if h.ModeledBytes() != h.Bytes() {
		t.Error("exact store model must equal actual bytes")
	}
}

func TestSetReadAndWriteSameEntry(t *testing.T) {
	f := func(addr uint64, wl, rl uint16) bool {
		h := New(32)
		h.SetWrite(addr, slot(int(wl)+1))
		h.SetRead(addr, slot(int(rl)+1))
		w, okw := h.LookupWrite(addr)
		r, okr := h.LookupRead(addr)
		return okw && okr && w.Loc().Line() == int(wl)+1 && r.Loc().Line() == int(rl)+1 && h.Entries() == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
