// Package hashtab implements the bucketed hash-table access-history store the
// paper discusses as the middle ground between shadow memory and signatures
// (§III-B): exact like shadow memory, bounded directory like a signature, but
// "incurs additional time overhead since when more than one address is hashed
// into the same bucket, the bucket has to be searched for the address in
// question." The paper measured this approach 1.5–3.7× slower than
// signatures; the store-ablation benchmark reproduces that comparison.
package hashtab

import (
	"fmt"

	"ddprof/internal/sig"
)

func init() {
	sig.Register(sig.Backend{
		Name:  "hashtab",
		Exact: true,
		Doc:   "chained hash table (§III-B middle ground); exact, bounded directory via buckets, entries grow with the footprint",
		New: func(sp sig.Spec) (sig.Store, error) {
			if err := sp.Only("buckets"); err != nil {
				return nil, err
			}
			buckets, err := sp.Int("buckets", sp.SlotsDefault(1<<16))
			if err != nil {
				return nil, err
			}
			if buckets < 1 {
				return nil, fmt.Errorf("sig: backend hashtab: buckets = %d; want >= 1", buckets)
			}
			return New(buckets), nil
		},
	})
}

type entry struct {
	addr  uint64
	write sig.Slot
	read  sig.Slot
	next  *entry
}

// Table is an exact chained hash table implementing sig.Store.
type Table struct {
	buckets []*entry
	mask    uint64
	entries uint64
}

// New returns a table with the given number of buckets, rounded up to a
// power of two.
func New(buckets int) *Table {
	n := 1
	for n < buckets {
		n <<= 1
	}
	return &Table{buckets: make([]*entry, n), mask: uint64(n - 1)}
}

func (t *Table) hash(addr uint64) uint64 {
	h := addr
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	return h & t.mask
}

// find walks the bucket chain — the extra work signatures avoid.
func (t *Table) find(addr uint64, alloc bool) *entry {
	i := t.hash(addr)
	for e := t.buckets[i]; e != nil; e = e.next {
		if e.addr == addr {
			return e
		}
	}
	if !alloc {
		return nil
	}
	e := &entry{addr: addr, next: t.buckets[i]}
	t.buckets[i] = e
	t.entries++
	return e
}

// LookupWrite implements sig.Store.
func (t *Table) LookupWrite(addr uint64) (sig.Slot, bool) {
	if e := t.find(addr, false); e != nil && !e.write.Empty() {
		return e.write, true
	}
	return sig.Slot{}, false
}

// LookupRead implements sig.Store.
func (t *Table) LookupRead(addr uint64) (sig.Slot, bool) {
	if e := t.find(addr, false); e != nil && !e.read.Empty() {
		return e.read, true
	}
	return sig.Slot{}, false
}

// SetWrite implements sig.Store.
func (t *Table) SetWrite(addr uint64, s sig.Slot) { t.find(addr, true).write = s }

// SetRead implements sig.Store.
func (t *Table) SetRead(addr uint64, s sig.Slot) { t.find(addr, true).read = s }

// Remove implements sig.Store: the entry is unlinked, genuinely freeing its
// state (unlike a signature, removal here is exact).
func (t *Table) Remove(addr uint64) {
	i := t.hash(addr)
	for pp := &t.buckets[i]; *pp != nil; pp = &(*pp).next {
		if (*pp).addr == addr {
			*pp = (*pp).next
			t.entries--
			return
		}
	}
}

// Bytes implements sig.Store: directory plus chained entries.
func (t *Table) Bytes() uint64 {
	const perEntry = 8 + 24 + 24 + 8
	return uint64(len(t.buckets))*8 + t.entries*perEntry
}

// ModeledBytes implements sig.Store; exact stores have no separate model.
func (t *Table) ModeledBytes() uint64 { return t.Bytes() }

// Entries returns the number of distinct addresses stored.
func (t *Table) Entries() int { return int(t.entries) }

// VisitWriteRun implements sig.RunVisitor: one chain walk per element
// instead of the elementwise fallback's three (LookupWrite + LookupRead +
// SetWrite each re-hash and re-search the bucket). Every geometry is
// accepted; entry slots are zero-valued when absent, exactly what the
// per-address path reports.
func (t *Table) VisitWriteRun(base, stride uint64, count uint32, visit func(j uint32, write, read sig.Slot) sig.Slot) bool {
	addr := base
	for j := uint32(0); j < count; j++ {
		e := t.find(addr, true)
		e.write = visit(j, e.write, e.read)
		addr += stride
	}
	return true
}

// VisitReadRun implements sig.RunVisitor.
func (t *Table) VisitReadRun(base, stride uint64, count uint32, visit func(j uint32, write sig.Slot) sig.Slot) bool {
	addr := base
	for j := uint32(0); j < count; j++ {
		e := t.find(addr, true)
		e.read = visit(j, e.write)
		addr += stride
	}
	return true
}
