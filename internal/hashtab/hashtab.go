// Package hashtab implements the bucketed hash-table access-history store the
// paper discusses as the middle ground between shadow memory and signatures
// (§III-B): exact like shadow memory, bounded directory like a signature, but
// "incurs additional time overhead since when more than one address is hashed
// into the same bucket, the bucket has to be searched for the address in
// question." The paper measured this approach 1.5–3.7× slower than
// signatures; the store-ablation benchmark reproduces that comparison.
package hashtab

import "ddprof/internal/sig"

type entry struct {
	addr  uint64
	write sig.Slot
	read  sig.Slot
	next  *entry
}

// Table is an exact chained hash table implementing sig.Store.
type Table struct {
	buckets []*entry
	mask    uint64
	entries uint64
}

// New returns a table with the given number of buckets, rounded up to a
// power of two.
func New(buckets int) *Table {
	n := 1
	for n < buckets {
		n <<= 1
	}
	return &Table{buckets: make([]*entry, n), mask: uint64(n - 1)}
}

func (t *Table) hash(addr uint64) uint64 {
	h := addr
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	return h & t.mask
}

// find walks the bucket chain — the extra work signatures avoid.
func (t *Table) find(addr uint64, alloc bool) *entry {
	i := t.hash(addr)
	for e := t.buckets[i]; e != nil; e = e.next {
		if e.addr == addr {
			return e
		}
	}
	if !alloc {
		return nil
	}
	e := &entry{addr: addr, next: t.buckets[i]}
	t.buckets[i] = e
	t.entries++
	return e
}

// LookupWrite implements sig.Store.
func (t *Table) LookupWrite(addr uint64) (sig.Slot, bool) {
	if e := t.find(addr, false); e != nil && !e.write.Empty() {
		return e.write, true
	}
	return sig.Slot{}, false
}

// LookupRead implements sig.Store.
func (t *Table) LookupRead(addr uint64) (sig.Slot, bool) {
	if e := t.find(addr, false); e != nil && !e.read.Empty() {
		return e.read, true
	}
	return sig.Slot{}, false
}

// SetWrite implements sig.Store.
func (t *Table) SetWrite(addr uint64, s sig.Slot) { t.find(addr, true).write = s }

// SetRead implements sig.Store.
func (t *Table) SetRead(addr uint64, s sig.Slot) { t.find(addr, true).read = s }

// Remove implements sig.Store: the entry is unlinked, genuinely freeing its
// state (unlike a signature, removal here is exact).
func (t *Table) Remove(addr uint64) {
	i := t.hash(addr)
	for pp := &t.buckets[i]; *pp != nil; pp = &(*pp).next {
		if (*pp).addr == addr {
			*pp = (*pp).next
			t.entries--
			return
		}
	}
}

// Bytes implements sig.Store: directory plus chained entries.
func (t *Table) Bytes() uint64 {
	const perEntry = 8 + 24 + 24 + 8
	return uint64(len(t.buckets))*8 + t.entries*perEntry
}

// ModeledBytes implements sig.Store; exact stores have no separate model.
func (t *Table) ModeledBytes() uint64 { return t.Bytes() }

// Entries returns the number of distinct addresses stored.
func (t *Table) Entries() int { return int(t.entries) }
