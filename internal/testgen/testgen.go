// Package testgen generates random minilang expressions and programs for
// differential testing. The property suite in internal/interp checks the
// tree-walking interpreter against a Go reference evaluation of the same
// expression; the fuzzer in internal/vm runs whole random programs under
// both executors and requires byte-identical event streams.
//
// Generated programs always terminate: every For loop has constant bounds,
// every While loop decrements an explicit counter, and there is no
// recursion. Array indices are masked non-negative and reduced modulo the
// array length, and divisor operands are constant non-zero, so the programs
// normally run to completion — runtime-error equivalence is pinned by the
// hand-written cases in internal/vm instead. Spawn is deliberately absent:
// thread interleaving makes raw streams scheduling-dependent, which would
// break exact comparison.
package testgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	ml "ddprof/internal/minilang"
)

// Expr builds a random expression tree over the scalars named in env
// together with a Go reference evaluator for it. Division-like operators
// guard their right operand so the reference never traps.
func Expr(r *rand.Rand, depth int, env map[string]float64) (ml.Expr, func() float64) {
	names := make([]string, 0, len(env))
	for n := range env {
		names = append(names, n)
	}
	// Map iteration order is random; sort for reproducibility.
	sort.Strings(names)
	return genExpr(r, depth, env, names)
}

func genExpr(r *rand.Rand, depth int, env map[string]float64, names []string) (ml.Expr, func() float64) {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			v := float64(r.Intn(41) - 20)
			return ml.C(v), func() float64 { return v }
		case 1:
			n := names[r.Intn(len(names))]
			return ml.V(n), func() float64 { return env[n] }
		default:
			v := float64(r.Intn(7) + 1)
			return ml.C(v), func() float64 { return v }
		}
	}
	l, lf := genExpr(r, depth-1, env, names)
	rr, rf := genExpr(r, depth-1, env, names)
	switch r.Intn(12) {
	case 0:
		return ml.Add(l, rr), func() float64 { return lf() + rf() }
	case 1:
		return ml.Sub(l, rr), func() float64 { return lf() - rf() }
	case 2:
		return ml.Mul(l, rr), func() float64 { return lf() * rf() }
	case 3:
		// Guarded integer division.
		return ml.IDiv(l, ml.Add(ml.Mul(rr, ml.C(0)), ml.C(3))), func() float64 {
			return float64(int64(lf()) / 3)
		}
	case 4:
		return ml.Mod(l, ml.Add(ml.Mul(rr, ml.C(0)), ml.C(7))), func() float64 {
			return float64(int64(lf()) % 7)
		}
	case 5:
		return ml.BAnd(l, rr), func() float64 { return float64(int64(lf()) & int64(rf())) }
	case 6:
		return ml.Xor(l, rr), func() float64 { return float64(int64(lf()) ^ int64(rf())) }
	case 7:
		return ml.Lt(l, rr), func() float64 { return b2f(lf() < rf()) }
	case 8:
		return ml.Ge(l, rr), func() float64 { return b2f(lf() >= rf()) }
	case 9:
		return ml.And(l, rr), func() float64 { return b2f(lf() != 0 && rf() != 0) }
	case 10:
		return ml.Neg(l), func() float64 { return -lf() }
	default:
		return ml.CallE("abs", l), func() float64 { return math.Abs(lf()) }
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// scope tracks what a statement generator may reference.
type scope struct {
	// scalars may be read and written.
	scalars []string
	// ro scalars may only be read: loop induction variables, while-loop
	// countdown counters and array-length parameters — writing any of
	// these could make a generated loop non-terminating or an index
	// computation trap.
	ro     []string
	arrays []string
	// alen gives the expression that bounds indices into each array: a
	// constant in main, the length parameter inside helpers.
	alen map[string]ml.Expr
}

// readable returns a random scalar eligible for reading, or "".
func (sc *scope) readable(r *rand.Rand) string {
	n := len(sc.scalars) + len(sc.ro)
	if n == 0 {
		return ""
	}
	i := r.Intn(n)
	if i < len(sc.scalars) {
		return sc.scalars[i]
	}
	return sc.ro[i-len(sc.scalars)]
}

type gen struct {
	r     *rand.Rand
	next  int // fresh-name counter
	stmts int // remaining statement budget
}

func (g *gen) fresh(prefix string) string {
	g.next++
	return fmt.Sprintf("%s%d", prefix, g.next)
}

// expr builds a random value expression over the scope: scalar reads,
// masked array reads, arithmetic and single-argument builtins.
func (g *gen) expr(sc *scope, depth int) ml.Expr {
	r := g.r
	if depth <= 0 || r.Intn(3) == 0 {
		switch {
		case sc.readable(r) != "" && r.Intn(3) != 0:
			return ml.V(sc.readable(r))
		case len(sc.arrays) > 0 && r.Intn(2) == 0:
			a := sc.arrays[r.Intn(len(sc.arrays))]
			return ml.Idx(a, g.index(sc, a))
		default:
			return ml.C(float64(r.Intn(19) - 9))
		}
	}
	l := g.expr(sc, depth-1)
	switch r.Intn(10) {
	case 0:
		return ml.Add(l, g.expr(sc, depth-1))
	case 1:
		return ml.Sub(l, g.expr(sc, depth-1))
	case 2:
		return ml.Mul(l, g.expr(sc, depth-1))
	case 3:
		return ml.IDiv(l, ml.C(float64(r.Intn(6)+1)))
	case 4:
		return ml.Mod(l, ml.C(float64(r.Intn(9)+1)))
	case 5:
		return ml.BAnd(l, ml.C(float64(r.Intn(255)+1)))
	case 6:
		return ml.Lt(l, g.expr(sc, depth-1))
	case 7:
		return ml.Neg(l)
	case 8:
		switch r.Intn(4) {
		case 0:
			return ml.CallE("abs", l)
		case 1:
			return ml.CallE("floor", l)
		case 2:
			return ml.CallE("sqrt", ml.CallE("abs", l))
		default:
			return ml.CallE("max", l, g.expr(sc, depth-1))
		}
	default:
		return ml.Xor(l, g.expr(sc, depth-1))
	}
}

// index builds an always-in-bounds index expression for array a: an
// arbitrary value masked non-negative, then reduced modulo the length.
func (g *gen) index(sc *scope, a string) ml.Expr {
	return ml.Mod(ml.BAnd(g.expr(sc, 1), ml.Ci(1023)), sc.alen[a])
}

// block emits up to g's remaining budget of random statements into b.
func (g *gen) block(b *ml.Block, sc *scope, depth int, topLevel bool) {
	n := 1 + g.r.Intn(4)
	for i := 0; i < n && g.stmts > 0; i++ {
		g.stmts--
		g.stmt(b, sc, depth, topLevel)
	}
}

func (g *gen) stmt(b *ml.Block, sc *scope, depth int, topLevel bool) {
	r := g.r
	switch r.Intn(12) {
	case 0: // declare a fresh scalar
		name := g.fresh("s")
		b.Decl(name, g.expr(sc, 2))
		sc.scalars = append(sc.scalars, name)
	case 1, 2: // assign or reduce an existing scalar
		if len(sc.scalars) == 0 {
			b.Decl(g.fresh("s"), g.expr(sc, 2))
			return
		}
		name := sc.scalars[r.Intn(len(sc.scalars))]
		if r.Intn(3) == 0 {
			b.Reduce(name, []ml.BinOp{ml.OpAdd, ml.OpMul}[r.Intn(2)], g.expr(sc, 2))
		} else {
			b.Assign(name, g.expr(sc, 2))
		}
	case 3, 4: // array store or in-place reduction
		if len(sc.arrays) == 0 {
			return
		}
		a := sc.arrays[r.Intn(len(sc.arrays))]
		if r.Intn(3) == 0 {
			b.SetReduce(a, g.index(sc, a), ml.OpAdd, g.expr(sc, 2))
		} else {
			b.Set(a, g.index(sc, a), g.expr(sc, 2))
		}
	case 5: // branch
		if depth <= 0 {
			return
		}
		var elseFn func(*ml.Block)
		if r.Intn(2) == 0 {
			elseFn = func(eb *ml.Block) { g.block(eb, sc, depth-1, false) }
		}
		b.If(g.expr(sc, 2), func(tb *ml.Block) { g.block(tb, sc, depth-1, false) }, elseFn)
	case 6, 7: // counted loop, sometimes with non-unit step
		if depth <= 0 {
			return
		}
		iv := g.fresh("i")
		step := 1 + r.Intn(2)
		inner := *sc
		inner.ro = append(append([]string(nil), sc.ro...), iv)
		b.For(iv, ml.Ci(r.Intn(2)), ml.Ci(2+r.Intn(6)), ml.Ci(step),
			ml.LoopOpt{Name: iv}, func(lb *ml.Block) {
				g.block(lb, &inner, depth-1, false)
			})
	case 8: // while loop over an explicit countdown
		if depth <= 0 {
			return
		}
		c := g.fresh("w")
		b.Decl(c, ml.Ci(1+r.Intn(5)))
		inner := *sc
		inner.ro = append(append([]string(nil), sc.ro...), c)
		b.While(ml.Gt(ml.V(c), ml.Ci(0)), ml.LoopOpt{Name: c}, func(wb *ml.Block) {
			g.block(wb, &inner, depth-1, false)
			wb.Assign(c, ml.Sub(ml.V(c), ml.Ci(1)))
		})
		sc.ro = append(sc.ro, c)
	case 9: // free a scratch array and redeclare it (address reuse)
		if !topLevel || len(sc.arrays) == 0 {
			return
		}
		a := sc.arrays[r.Intn(len(sc.arrays))]
		b.Free(a)
		size := 2 + r.Intn(14)
		b.DeclArr(a, ml.Ci(size))
		sc.alen[a] = ml.Ci(size)
	default: // declare a fresh array
		name := g.fresh("a")
		size := 2 + r.Intn(14)
		b.DeclArr(name, ml.Ci(size))
		sc.arrays = append(sc.arrays, name)
		sc.alen[name] = ml.Ci(size)
	}
}

// helperBody fills one helper function: params are an aliased array a, its
// length n and a scalar s; the body mixes the random statement mix with a
// guaranteed pass over the array, and may return a value.
func (g *gen) helperBody(fb *ml.Block, ret bool) {
	sc := &scope{
		scalars: []string{"s"},
		ro:      []string{"n"},
		arrays:  []string{"a"},
		alen:    map[string]ml.Expr{"a": ml.V("n")},
	}
	g.block(fb, sc, 2, false)
	iv := g.fresh("i")
	fb.For(iv, ml.Ci(0), ml.V("n"), ml.Ci(1), ml.LoopOpt{Name: iv}, func(lb *ml.Block) {
		lb.SetReduce("a", ml.V(iv), ml.OpAdd, ml.Add(ml.V("s"), ml.V(iv)))
	})
	if ret {
		fb.Ret(g.expr(sc, 2))
	}
}

// Program builds a random, always-terminating minilang program exercising
// scalars, arrays, nested loops, branches, reductions, builtins, free with
// redeclaration, computed indices, and helper calls that alias arrays by
// reference.
func Program(r *rand.Rand) *ml.Program {
	g := &gen{r: r, stmts: 40 + r.Intn(60)}
	p := ml.New("testgen")
	p.Func("bump", []string{"a", "n", "s"}, func(fb *ml.Block) {
		g.helperBody(fb, false)
	})
	p.Func("tally", []string{"a", "n", "s"}, func(fb *ml.Block) {
		g.helperBody(fb, true)
	})
	p.MainFunc(func(b *ml.Block) {
		sc := &scope{alen: map[string]ml.Expr{}}
		for i := 0; i < 2+r.Intn(2); i++ {
			name := g.fresh("s")
			b.Decl(name, ml.C(float64(r.Intn(21)-10)))
			sc.scalars = append(sc.scalars, name)
		}
		for i := 0; i < 1+r.Intn(2); i++ {
			name := g.fresh("a")
			size := 4 + r.Intn(12)
			b.DeclArr(name, ml.Ci(size))
			sc.arrays = append(sc.arrays, name)
			sc.alen[name] = ml.Ci(size)
		}
		g.block(b, sc, 3, true)
		// A few helper calls over randomly chosen arrays: bump mutates the
		// aliased array in place, tally also returns a value.
		for i := 0; i < 1+r.Intn(3); i++ {
			a := sc.arrays[r.Intn(len(sc.arrays))]
			if r.Intn(2) == 0 {
				b.Call("bump", ml.V(a), sc.alen[a], g.expr(sc, 2))
			} else {
				name := g.fresh("s")
				b.Decl(name, ml.CallE("tally", ml.V(a), sc.alen[a], g.expr(sc, 2)))
				sc.scalars = append(sc.scalars, name)
			}
			g.block(b, sc, 2, true)
		}
	})
	return p
}
