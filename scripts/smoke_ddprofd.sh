#!/bin/sh
# End-to-end smoke for the ddprofd live observatory: boot the daemon over a
# unix socket, profile a workload remotely while a -watch subscriber streams
# its epoch deltas, then hit the HTTP query API with a live diff. Run by
# `make smoke` (and `make check`).
set -eu

cd "$(dirname "$0")/.."
dir=$(mktemp -d)
dpid=""
cleanup() {
	[ -n "$dpid" ] && kill "$dpid" 2>/dev/null || true
	rm -rf "$dir"
}
trap cleanup EXIT INT TERM

go build -o "$dir/ddprofd" ./cmd/ddprofd
go build -o "$dir/ddprof" ./cmd/ddprof
go build -o "$dir/ddiff" ./cmd/ddiff

sock="$dir/dd.sock"
port=$((20000 + $$ % 20000))
"$dir/ddprofd" -listen "" -unix "$sock" -http "127.0.0.1:$port" \
	-epoch-interval 2ms -q >"$dir/daemon.log" 2>&1 &
dpid=$!

i=0
while [ ! -S "$sock" ]; do
	if ! kill -0 "$dpid" 2>/dev/null; then
		# Sandboxes without socket support are a skip, not a failure.
		if grep -q "listen" "$dir/daemon.log"; then
			echo "ddprofd smoke: SKIPPED (cannot listen in this environment)"
			exit 0
		fi
		echo "ddprofd smoke: daemon died at startup:"
		cat "$dir/daemon.log"
		exit 1
	fi
	i=$((i + 1))
	[ "$i" -gt 100 ] && { echo "ddprofd smoke: socket never appeared"; exit 1; }
	sleep 0.1
done

# Watch subscriber first: session 0 means "newest active, or the next one to
# arrive", so the watcher parks until the profiling session below begins.
"$dir/ddprof" -watch -remote "unix:$sock" -format binary -o "$dir/watched.ddp" \
	>"$dir/watch.out" 2>"$dir/watch.err" &
wpid=$!
sleep 0.3

# The profiled session the watcher observes.
"$dir/ddprof" -workload kmeans -scale 2 -remote "unix:$sock" -format binary \
	-o "$dir/direct.ddp" >"$dir/direct.out"

if ! wait "$wpid"; then
	echo "ddprofd smoke: watch failed:"
	cat "$dir/watch.err"
	exit 1
fi
grep -q "^# epoch" "$dir/watch.err" || {
	echo "ddprofd smoke: watcher saw no delta frames:"
	cat "$dir/watch.err"
	exit 1
}

# The folded delta stream must reconstruct the session's exact profile.
"$dir/ddiff" -binary "$dir/watched.ddp" "$dir/direct.ddp" >"$dir/fold.diff" || {
	echo "ddprofd smoke: folded watch profile differs from the session profile:"
	cat "$dir/fold.diff"
	exit 1
}

# Live HTTP diff: the session's own saved profile must be identical to the
# retained live session (watcher was session 1, the profile run session 2).
"$dir/ddiff" -http "http://127.0.0.1:$port/sessions/2" "$dir/direct.ddp" >"$dir/live.diff" || {
	echo "ddprofd smoke: live HTTP diff against session 2 not identical:"
	cat "$dir/live.diff"
	exit 1
}
grep -q "profiles are identical" "$dir/live.diff"

echo "ddprofd smoke: OK ($(grep -c '^# epoch' "$dir/watch.err") delta frames)"
