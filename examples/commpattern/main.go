// Communication-pattern detection (paper §VII-B, Figure 9): profile the
// water-spatial kernel with the multi-threaded-target profiler and derive
// the producer/consumer matrix from cross-thread RAW dependences.
package main

import (
	"fmt"
	"log"

	"ddprof"
	"ddprof/internal/workloads"
)

func main() {
	const threads = 8
	prog := workloads.WaterSpatial(workloads.Config{Scale: 1, Threads: threads})

	res, err := ddprof.Profile(prog, ddprof.Config{Mode: ddprof.ModeMT, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Communication(threads)
	fmt.Printf("communication pattern of water-spatial (%d threads):\n\n", threads)
	fmt.Println(m.Heatmap())
	fmt.Printf("cross-thread RAW volume: %d instances\n", m.CrossThread())
	fmt.Println()
	fmt.Println("each thread owns a block of cells and reads a halo from its ring")
	fmt.Println("neighbours, so the matrix shows a banded structure around the")
	fmt.Println("diagonal — the same shape the paper derives for splash2x.water-spatial.")
}
