// Trace record/replay: execute the target once while recording its memory
// access stream, then profile the trace offline at several signature sizes
// — the run-once/analyze-often workflow behind the paper's Table I
// methodology, without re-running the target.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ddprof"
	"ddprof/internal/workloads"
)

func main() {
	prog := workloads.StreamCluster(workloads.Config{Scale: 0.5})

	var buf bytes.Buffer
	n, err := ddprof.RecordTrace(prog, &buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d accesses of %s into a %d-byte trace (%.1f bytes/event)\n\n",
		n, prog.Name, buf.Len(), float64(buf.Len())/float64(n))

	// Ground truth from an exact store.
	truth, err := ddprof.ProfileTrace(bytes.NewReader(buf.Bytes()), ddprof.Config{Backend: "perfect"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact store:        %d dependences\n", truth.Unique())

	// The same trace at shrinking signature sizes: watch accuracy erode
	// only once the signature drops below the address footprint.
	for _, slots := range []int{1 << 20, 1 << 12, 1 << 7} {
		set, err := ddprof.ProfileTrace(bytes.NewReader(buf.Bytes()), ddprof.Config{Slots: slots})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d-slot signature: %d dependences\n", slots, set.Unique())
	}
	fmt.Println("\none execution, many profiles — the trace replaces re-running the target.")
}
