// Quickstart: build a tiny target program, profile it with the parallel
// lock-free profiler, and print its data dependences in the paper's output
// format.
package main

import (
	"fmt"
	"log"
	"os"

	"ddprof"
)

func main() {
	// A small program with three kinds of loops: a parallelizable map, a
	// reduction, and a genuinely sequential recurrence.
	p := ddprof.NewProgram("quickstart")
	p.MainFunc(func(b *ddprof.Block) {
		b.Decl("n", ddprof.Ci(64))
		b.DeclArr("a", ddprof.V("n"))
		b.DeclArr("fib", ddprof.V("n"))
		b.Decl("sum", ddprof.Ci(0))

		// Map: a[i] = i*i — no loop-carried dependences.
		b.For("i", ddprof.Ci(0), ddprof.V("n"), ddprof.Ci(1),
			ddprof.LoopOpt{Name: "square", OMP: true}, func(l *ddprof.Block) {
				l.Set("a", ddprof.V("i"), ddprof.Mul(ddprof.V("i"), ddprof.V("i")))
			})

		// Reduction: sum += a[i] — carried RAW, removable by a reduction.
		b.For("i", ddprof.Ci(0), ddprof.V("n"), ddprof.Ci(1),
			ddprof.LoopOpt{Name: "sum"}, func(l *ddprof.Block) {
				l.Reduce("sum", ddprof.OpAdd, ddprof.Idx("a", ddprof.V("i")))
			})

		// Recurrence: fib[i] = fib[i-1] + fib[i-2] — sequential.
		b.Set("fib", ddprof.Ci(0), ddprof.Ci(1))
		b.Set("fib", ddprof.Ci(1), ddprof.Ci(1))
		b.For("i", ddprof.Ci(2), ddprof.V("n"), ddprof.Ci(1),
			ddprof.LoopOpt{Name: "fib"}, func(l *ddprof.Block) {
				l.Set("fib", ddprof.V("i"),
					ddprof.Add(ddprof.Idx("fib", ddprof.Sub(ddprof.V("i"), ddprof.Ci(1))),
						ddprof.Idx("fib", ddprof.Sub(ddprof.V("i"), ddprof.Ci(2)))))
			})
	})

	res, err := ddprof.Profile(p, ddprof.Config{Mode: ddprof.ModeParallel, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== dependences (paper Figure 1 format) ===")
	if err := res.WriteDeps(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== loop classification ===")
	for _, l := range res.Loops {
		verdict := "sequential"
		switch {
		case l.Parallelizable:
			verdict = "parallelizable"
		case l.Reduction:
			verdict = "reduction"
		}
		fmt.Printf("  %-8s %4d iterations  carried RAW=%d  -> %s\n",
			l.Loop.Name, l.Iterations, l.CarriedRAW, verdict)
	}
	fmt.Printf("\nprofiled %d accesses into %d merged dependences\n",
		res.Accesses, res.Deps.Unique())
}
