// Data-race flagging (paper §V-B): profile the same multi-threaded update
// twice — once with the shared counter protected by a mutex, once without —
// and show that only the unprotected version yields dependences whose
// timestamps prove the accesses were not mutually exclusive.
package main

import (
	"fmt"
	"log"

	"ddprof"
)

// counter builds a 4-thread program incrementing a shared counter; locked
// selects whether the increment is protected.
func counter(locked bool) *ddprof.Program {
	name := "counter-unlocked"
	if locked {
		name = "counter-locked"
	}
	p := ddprof.NewProgram(name)
	p.MainFunc(func(b *ddprof.Block) {
		b.Decl("counter", ddprof.Ci(0))
		b.Spawn(4, func(s *ddprof.Block) {
			s.For("i", ddprof.Ci(0), ddprof.Ci(2000), ddprof.Ci(1),
				ddprof.LoopOpt{Name: "inc"}, func(l *ddprof.Block) {
					inc := func(cr *ddprof.Block) {
						cr.Reduce("counter", ddprof.OpAdd, ddprof.Ci(1))
					}
					if locked {
						l.Lock("m", inc)
					} else {
						inc(l)
					}
				})
		})
	})
	return p
}

func main() {
	for _, locked := range []bool{true, false} {
		prog := counter(locked)
		// SchedulerFuzz emulates preemptive scheduling so the experiment
		// also works on machines with fewer cores than target threads.
		res, err := ddprof.Profile(prog, ddprof.Config{Mode: ddprof.ModeMT, Workers: 4, SchedulerFuzz: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", prog.Name)
		fmt.Printf("  dependences flagged as potential races: %d\n\n", res.Races)
	}
	fmt.Println("with the mutex, every access and its profiling push are atomic, so")
	fmt.Println("timestamps arrive in order; without it, reversed timestamps prove the")
	fmt.Println("accesses were not mutually exclusive — a potential data race (§V-B).")
}
