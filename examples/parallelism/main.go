// Parallelism discovery on a real kernel: profile the NAS CG benchmark and
// report which of its loops can be parallelized — the DiscoPoP use case of
// the paper's §VII-A, including recognition of reduction loops that need a
// reduction clause rather than a plain parallel-for.
package main

import (
	"fmt"
	"log"

	"ddprof"
	"ddprof/internal/workloads"
)

func main() {
	w, ok := workloads.ByName("CG")
	if !ok {
		log.Fatal("CG workload missing")
	}
	prog := w.Build(workloads.Config{Scale: 1})

	// Profile with the parallel lock-free profiler and a 2M-slot signature.
	res, err := ddprof.Profile(prog, ddprof.Config{
		Mode:    ddprof.ModeParallel,
		Workers: 8,
		Slots:   1 << 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("loop-level parallelism in NAS CG, from profiled dependences:")
	fmt.Println()
	identified, omp := 0, 0
	for _, l := range res.Loops {
		if !l.Loop.OMP {
			continue // only the loops the OpenMP version parallelizes
		}
		omp++
		switch {
		case l.Parallelizable:
			identified++
			fmt.Printf("  ✓ %-16s parallelizable (no carried RAW, %d iterations)\n",
				l.Loop.Name, l.Iterations)
		case l.Reduction:
			fmt.Printf("  ~ %-16s needs a reduction clause (%d carried reduction RAWs)\n",
				l.Loop.Name, l.CarriedRAWRed)
		default:
			fmt.Printf("  ✗ %-16s sequential (%d carried RAWs)\n",
				l.Loop.Name, l.CarriedRAW)
		}
	}
	fmt.Printf("\n%d of %d OMP-annotated loops identified as plainly parallelizable\n", identified, omp)
	fmt.Println("(Table II reports 9/16 for CG — the 7 others are the dot-product reductions)")
}
