// Naive matrix multiply C = A*B over n x n matrices, followed by a trace
// norm — a classic parallelism-discovery target: the i/j loops are DOALL,
// the k loop is a reduction, and the norm loop is a reduction too.
func main() {
    var n = 24
    arr A[n * n]
    arr B[n * n]
    arr Cm[n * n]
    for i = 0; i < n * n; i += 1 omp "init_A" {
        A[i] = i % 7
    }
    for i = 0; i < n * n; i += 1 omp "init_B" {
        B[i] = i % 5 + 1
    }
    for i = 0; i < n; i += 1 omp "rows" {
        for j = 0; j < n; j += 1 omp "cols" {
            var acc = 0
            for k = 0; k < n; k += 1 "dot" {
                acc += A[i * n + k] * B[k * n + j]
            }
            Cm[i * n + j] = acc
        }
    }
    var trace = 0
    for i = 0; i < n; i += 1 "trace" {
        trace += Cm[i * n + i]
    }
}
