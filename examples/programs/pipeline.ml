// A 4-thread pipeline over shared cells, all updates under one mutex: the
// profiler's communication matrix shows the ring pattern, and no data races
// are flagged because access and push are atomic inside the lock.
func main() {
    arr cells[4]
    for i = 0; i < 4; i += 1 "seed" {
        cells[i] = i
    }
    spawn 4 {
        for round = 0; round < 200; round += 1 "rounds" {
            lock ring {
                cells[tid] = cells[(tid + 3) % 4] + 1
            }
        }
    }
}
