// Package programs_test parses and profiles every sample program, keeping
// the shipped .ml files in sync with the front-end.
package programs_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ddprof"
)

func TestSamplesParseAndProfile(t *testing.T) {
	files, err := filepath.Glob("*.ml")
	if err != nil || len(files) == 0 {
		t.Fatalf("no sample programs found: %v", err)
	}
	wantParallel := map[string][]string{
		"matmul.ml":    {"init_A", "init_B", "rows", "cols"},
		"histogram.ml": {"gen", "clear", "rescale"},
		"stencil.ml":   {"init", "jacobi"},
	}
	for _, f := range files {
		t.Run(f, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			p, err := ddprof.ParseTarget(f, string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			mode := ddprof.ModeParallel
			if strings.Contains(string(src), "spawn") {
				mode = ddprof.ModeMT
			}
			res, err := ddprof.Profile(p, ddprof.Config{Mode: mode, Workers: 4, Backend: "perfect"})
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			if res.Accesses == 0 || res.Deps.Unique() == 0 {
				t.Fatal("empty profile")
			}
			if want, ok := wantParallel[f]; ok {
				got := map[string]bool{}
				for _, name := range res.ParallelizableLoops() {
					got[name] = true
				}
				for _, name := range want {
					if !got[name] {
						t.Errorf("loop %s not identified; got %v", name, res.ParallelizableLoops())
					}
				}
				if len(got) != len(want) {
					t.Errorf("parallelizable = %v, want exactly %v", res.ParallelizableLoops(), want)
				}
			}
		})
	}
}

func TestStencilDoacross(t *testing.T) {
	src, err := os.ReadFile("stencil.ml")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ddprof.ParseTarget("stencil.ml", string(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ddprof.Profile(p, ddprof.Config{Backend: "perfect"})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Loops {
		switch l.Loop.Name {
		case "gauss_seidel":
			if l.Parallelizable || l.DoacrossDistance != 1 {
				t.Errorf("gauss_seidel = %+v, want sequential distance 1", l)
			}
		case "lag3":
			if l.DoacrossDistance != 3 {
				t.Errorf("lag3 distance = %d, want 3", l.DoacrossDistance)
			}
		}
	}
}
