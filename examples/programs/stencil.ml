// Jacobi vs Gauss-Seidel: the Jacobi sweep (reads old, writes new) is
// DOALL; the in-place Gauss-Seidel sweep carries a distance-1 RAW and is
// sequential; a lag-3 recurrence shows DOACROSS headroom.
func main() {
    var n = 400
    arr old[n]
    arr new[n]
    for i = 0; i < n; i += 1 omp "init" {
        old[i] = i % 13
    }
    for i = 1; i < n - 1; i += 1 omp "jacobi" {
        new[i] = (old[i - 1] + old[i] + old[i + 1]) / 3
    }
    for i = 1; i < n - 1; i += 1 "gauss_seidel" {
        new[i] = (new[i - 1] + new[i] + new[i + 1]) / 3
    }
    for i = 3; i < n; i += 1 "lag3" {
        old[i] = old[i - 3] + new[i]
    }
}
