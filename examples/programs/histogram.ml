// Histogram with a data-dependent scatter-add: the bucket update is a
// carried reduction (parallelizable only with atomics/reduction arrays),
// while the key generation and the rescale pass are DOALL.
func main() {
    var n = 3000
    var nb = 64
    arr keys[n]
    arr hist[nb]
    for i = 0; i < n; i += 1 omp "gen" {
        keys[i] = (i * 2654435) % nb
    }
    for b = 0; b < nb; b += 1 omp "clear" {
        hist[b] = 0
    }
    for i = 0; i < n; i += 1 omp "count" {
        hist[keys[i]] += 1
    }
    for b = 0; b < nb; b += 1 omp "rescale" {
        hist[b] = hist[b] * 100 / n
    }
}
