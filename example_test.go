package ddprof_test

import (
	"fmt"
	"os"

	"ddprof"
)

// ExampleProfile profiles a small loop and reports its classification.
func ExampleProfile() {
	p := ddprof.NewProgram("example")
	p.MainFunc(func(b *ddprof.Block) {
		b.Decl("n", ddprof.Ci(32))
		b.DeclArr("a", ddprof.V("n"))
		b.For("i", ddprof.Ci(0), ddprof.V("n"), ddprof.Ci(1),
			ddprof.LoopOpt{Name: "fill"}, func(l *ddprof.Block) {
				l.Set("a", ddprof.V("i"), ddprof.Mul(ddprof.V("i"), ddprof.V("i")))
			})
	})
	res, err := ddprof.Profile(p, ddprof.Config{Mode: ddprof.ModeSerial, Backend: "perfect"})
	if err != nil {
		panic(err)
	}
	for _, l := range res.Loops {
		fmt.Printf("%s: %d iterations, parallelizable=%v\n",
			l.Loop.Name, l.Iterations, l.Parallelizable)
	}
	// Output:
	// fill: 32 iterations, parallelizable=true
}

// ExampleResult_WriteDeps dumps dependences in the paper's Figure 1 format.
func ExampleResult_WriteDeps() {
	p := ddprof.NewProgram("example")
	p.MainFunc(func(b *ddprof.Block) {
		b.Decl("x", ddprof.Ci(1))                            // line 1
		b.Decl("y", ddprof.Add(ddprof.V("x"), ddprof.Ci(1))) // line 2
	})
	res, err := ddprof.Profile(p, ddprof.Config{Backend: "perfect"})
	if err != nil {
		panic(err)
	}
	_ = res.WriteDeps(os.Stdout)
	// Output:
	// 1:1 NOM {INIT *}
	// 1:2 NOM {RAW 1:1|x} {INIT *}
}

// ExampleProfileUnion merges dependences across two inputs of the same
// program — the paper's mitigation for input sensitivity.
func ExampleProfileUnion() {
	build := func(stride int) func() *ddprof.Program {
		return func() *ddprof.Program {
			p := ddprof.NewProgram("union")
			p.MainFunc(func(b *ddprof.Block) {
				b.DeclArr("a", ddprof.Ci(64))
				b.For("i", ddprof.Ci(1), ddprof.Ci(64), ddprof.Ci(1),
					ddprof.LoopOpt{Name: "upd"}, func(l *ddprof.Block) {
						l.Set("a", ddprof.V("i"),
							ddprof.Idx("a", ddprof.Sub(ddprof.V("i"), ddprof.Ci(stride))))
					})
			})
			return p
		}
	}
	union, err := ddprof.ProfileUnion(
		[]func() *ddprof.Program{build(0), build(1)},
		ddprof.Config{Backend: "perfect"})
	if err != nil {
		panic(err)
	}
	fmt.Printf("parallelizable under every input: %v\n", union.ParallelizableLoops())
	// Output:
	// parallelizable under every input: []
}
