package ddprof_test

import (
	"fmt"
	"sync"
	"testing"

	"ddprof"
	"ddprof/internal/dep"
)

// buildVariant returns a program whose dependence set differs per variant, so
// cross-talk between concurrent Profile calls would be visible.
func buildVariant(v int) *ddprof.Program {
	p := ddprof.NewProgram(fmt.Sprintf("variant%d", v))
	p.MainFunc(func(b *ddprof.Block) {
		n := 100 + 30*v
		b.Decl("n", ddprof.Ci(n))
		b.DeclArr("a", ddprof.V("n"))
		b.Decl("sum", ddprof.Ci(0))
		b.For("i", ddprof.Ci(0), ddprof.V("n"), ddprof.Ci(1),
			ddprof.LoopOpt{Name: "fill"}, func(l *ddprof.Block) {
				l.Set("a", ddprof.V("i"), ddprof.Mul(ddprof.V("i"), ddprof.Ci(v+2)))
			})
		b.For("i", ddprof.Ci(v+1), ddprof.V("n"), ddprof.Ci(1),
			ddprof.LoopOpt{Name: "scan"}, func(l *ddprof.Block) {
				l.Set("a", ddprof.V("i"),
					ddprof.Add(ddprof.Idx("a", ddprof.Sub(ddprof.V("i"), ddprof.Ci(v+1))),
						ddprof.Idx("a", ddprof.V("i"))))
				l.Reduce("sum", ddprof.OpAdd, ddprof.Idx("a", ddprof.V("i")))
			})
		b.Free("a")
	})
	return p
}

// TestConcurrentProfileIsolation runs several Profile calls on different
// programs from concurrent goroutines (run under -race): each result must be
// exactly what a lone run of the same program produces — no shared state, no
// cross-session contamination.
func TestConcurrentProfileIsolation(t *testing.T) {
	const variants = 4
	cfg := func(mode ddprof.Mode) ddprof.Config {
		return ddprof.Config{Mode: mode, Workers: 2, Backend: "perfect"}
	}

	// Reference results, profiled one at a time.
	refs := make([]*ddprof.Result, variants)
	for v := 0; v < variants; v++ {
		res, err := ddprof.Profile(buildVariant(v), cfg(ddprof.ModeSerial))
		if err != nil {
			t.Fatal(err)
		}
		refs[v] = res
	}

	for _, mode := range []ddprof.Mode{ddprof.ModeSerial, ddprof.ModeParallel} {
		var wg sync.WaitGroup
		results := make([]*ddprof.Result, variants)
		errs := make([]error, variants)
		for v := 0; v < variants; v++ {
			wg.Add(1)
			go func(v int) {
				defer wg.Done()
				results[v], errs[v] = ddprof.Profile(buildVariant(v), cfg(mode))
			}(v)
		}
		wg.Wait()
		for v := 0; v < variants; v++ {
			if errs[v] != nil {
				t.Fatalf("mode %d variant %d: %v", mode, v, errs[v])
			}
			got, want := results[v], refs[v]
			if got.Accesses != want.Accesses {
				t.Errorf("mode %d variant %d: %d accesses, want %d", mode, v, got.Accesses, want.Accesses)
			}
			if got.Deps.Unique() != want.Deps.Unique() {
				t.Errorf("mode %d variant %d: %d unique deps, want %d", mode, v, got.Deps.Unique(), want.Deps.Unique())
			}
			want.Deps.Range(func(k dep.Key, st dep.Stats) bool {
				gst, ok := got.Deps.Lookup(k)
				if !ok || gst.Count != st.Count {
					t.Errorf("mode %d variant %d: dependence %+v diverged: %+v vs %+v", mode, v, k, gst, st)
					return false
				}
				return true
			})
		}
	}
}
